"""Unit tests for the LSH index."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.lsh import LSHIndex


@pytest.fixture(scope="module")
def corpus():
    X = sift_like(1500, dim=32, seed=7)
    Q = sample_queries(X, 30, noise_scale=0.03, seed=8)
    gt_d, gt_i = brute_force_knn(X, Q, 5)
    return X, Q, gt_d, gt_i


class TestLSHIndex:
    def test_exact_duplicate_query_found(self, corpus):
        X, *_ = corpus
        idx = LSHIndex(n_tables=8, n_bits=10, seed=1).fit(X)
        d, ids = idx.knn_search(X[17], 1)
        assert ids[0] == 17 and d[0] == pytest.approx(0.0, abs=1e-5)

    def test_recall_with_enough_tables(self, corpus):
        X, Q, gt_d, gt_i = corpus
        idx = LSHIndex(n_tables=16, n_bits=8, bucket_width=12.0, seed=1).fit(X)
        hits = sum(
            len(set(idx.knn_search(Q[i], 5)[1]) & set(gt_i[i])) for i in range(len(Q))
        )
        assert hits / (len(Q) * 5) >= 0.8

    def test_more_tables_more_recall_more_scan(self, corpus):
        X, Q, gt_d, gt_i = corpus

        def run(n_tables):
            idx = LSHIndex(n_tables=n_tables, n_bits=8, bucket_width=6.0, seed=1).fit(X)
            hits = sum(
                len(set(idx.knn_search(Q[i], 5)[1]) & set(gt_i[i]))
                for i in range(len(Q))
            )
            return hits, idx.selectivity(Q)

        h2, s2 = run(2)
        h16, s16 = run(16)
        assert h16 >= h2
        assert s16 > s2

    def test_more_bits_more_selective(self, corpus):
        X, Q, *_ = corpus
        loose = LSHIndex(n_tables=4, n_bits=4, bucket_width=6.0, seed=1).fit(X)
        tight = LSHIndex(n_tables=4, n_bits=16, bucket_width=6.0, seed=1).fit(X)
        assert tight.selectivity(Q) < loose.selectivity(Q)

    def test_external_ids(self, corpus):
        X, *_ = corpus
        ids = np.arange(len(X)) + 5000
        idx = LSHIndex(n_tables=8, n_bits=8, seed=1).fit(X, ids)
        _, res = idx.knn_search(X[0], 3)
        assert res[0] == 5000

    def test_empty_bucket_returns_empty(self):
        X = np.zeros((10, 4), dtype=np.float32) + np.arange(4)
        idx = LSHIndex(n_tables=2, n_bits=16, bucket_width=0.01, seed=1).fit(X)
        far = np.full(4, 1e6, dtype=np.float32)
        d, ids = idx.knn_search(far, 3)
        assert len(ids) == 0

    def test_validation(self, corpus):
        X, *_ = corpus
        with pytest.raises(ValueError):
            LSHIndex(n_tables=0)
        with pytest.raises(ValueError):
            LSHIndex(bucket_width=0)
        with pytest.raises(RuntimeError, match="fit"):
            LSHIndex().candidates(X[0])
        with pytest.raises(ValueError, match="ids"):
            LSHIndex().fit(X, ids=np.arange(3))

    def test_deterministic(self, corpus):
        X, Q, *_ = corpus
        a = LSHIndex(n_tables=4, n_bits=8, seed=9).fit(X)
        b = LSHIndex(n_tables=4, n_bits=8, seed=9).fit(X)
        da, ia = a.knn_search(Q[0], 5)
        db, ib = b.knn_search(Q[0], 5)
        assert np.array_equal(ia, ib)
