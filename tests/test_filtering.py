"""Tests for repro.filtering: predicates, metadata, strategies, tenants.

Covers the filtered-search stack bottom-up — :class:`FilterSpec` parsing
and wire round-trips, the :class:`MetadataStore` attribute columns, the
pre/post selectivity crossover, the adversarial filtered-HNSW
connectivity property (a predicate selecting a far-away cluster must
stay reachable because non-matching nodes remain in the traversal
frontier), tenant cache-key namespacing, and the end-to-end engine
surface (``fit(metadata=...)`` + ``query(filter=..., tenant=...)``)
including the bit-identity guarantee for unfiltered queries.
"""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import sample_queries, sift_like
from repro.filtering import (
    CROSSOVER_SELECTIVITY,
    FilterSpec,
    FilterSpecError,
    MetadataStore,
    choose_strategy,
    clauses_from_wire,
    clauses_to_wire,
    mask_for,
    selectivity,
)
from repro.hnsw import HnswIndex, HnswParams
from repro.runtime.report import SearchReport
from repro.serving import ResultCache, cache_namespace


class TestFilterSpec:
    def test_eq_matches(self):
        spec = FilterSpec("tier", "eq", 3)
        np.testing.assert_array_equal(
            spec.matches(np.array([1, 3, 3, 7])), [False, True, True, False]
        )

    def test_in_matches_and_sorts(self):
        spec = FilterSpec("tier", "in", (5, 1, 2))
        assert spec.value == (1, 2, 5)
        np.testing.assert_array_equal(
            spec.matches(np.array([0, 1, 2, 3, 5])), [False, True, True, False, True]
        )

    def test_range_matches_inclusive(self):
        spec = FilterSpec("tier", "range", (2, 4))
        np.testing.assert_array_equal(
            spec.matches(np.array([1, 2, 3, 4, 5])), [False, True, True, True, False]
        )

    def test_frozen_and_hashable(self):
        spec = FilterSpec("tier", "eq", 3)
        assert hash(spec) == hash(FilterSpec("tier", "eq", 3))
        with pytest.raises(AttributeError):
            spec.attr = "other"

    def test_json_round_trip(self):
        for spec in (
            FilterSpec("tier", "eq", 3),
            FilterSpec("tier", "in", (1, 2, 5)),
            FilterSpec("tier", "range", (10, 20)),
        ):
            assert FilterSpec.from_json(spec.to_json()) == spec

    def test_wire_round_trip(self):
        clauses = (FilterSpec("tier", "eq", 3), FilterSpec("tenant", "in", (0, 2)))
        assert clauses_from_wire(clauses_to_wire(clauses)) == clauses

    @pytest.mark.parametrize(
        ("text", "expected"),
        [
            ("tier=3", FilterSpec("tier", "eq", 3)),
            ("tier=1,2,5", FilterSpec("tier", "in", (1, 2, 5))),
            ("tier=10..20", FilterSpec("tier", "range", (10, 20))),
            ('{"attr": "tier", "op": "eq", "value": 7}', FilterSpec("tier", "eq", 7)),
        ],
    )
    def test_parse(self, text, expected):
        assert FilterSpec.parse(text) == expected

    @pytest.mark.parametrize(
        "bad",
        ["tier", "tier=x", "tier=5..1", "tier=", "=3", '{"attr": "tier"}', "{not json"],
    )
    def test_parse_errors(self, bad):
        with pytest.raises(FilterSpecError):
            FilterSpec.parse(bad)

    def test_bad_op_rejected(self):
        with pytest.raises(FilterSpecError):
            FilterSpec("tier", "neq", 3)

    def test_empty_in_rejected(self):
        with pytest.raises(FilterSpecError):
            FilterSpec("tier", "in", ())


class TestMetadataStore:
    def test_columns_cast_to_int64(self):
        store = MetadataStore({"tier": np.array([1.0, 2.0, 3.0])})
        assert store.column("tier").dtype == np.int64
        assert len(store) == 3

    def test_length_mismatch_rejected(self):
        store = MetadataStore({"tier": np.arange(4)})
        with pytest.raises(ValueError):
            store.add_column("tenant", np.arange(5))

    def test_non_numeric_rejected(self):
        with pytest.raises(ValueError):
            MetadataStore({"name": np.array(["a", "b"])})

    def test_slice_rows(self):
        store = MetadataStore({"tier": np.arange(10) % 3})
        sliced = store.slice_rows(np.array([0, 3, 7]))
        np.testing.assert_array_equal(sliced["tier"], [0, 0, 1])

    def test_mask_and_selectivity(self):
        store = MetadataStore({"tier": np.arange(10) % 5})
        clauses = (FilterSpec("tier", "eq", 2),)
        mask = store.mask(clauses)
        assert np.count_nonzero(mask) == 2
        assert store.selectivity(clauses) == pytest.approx(0.2)

    def test_unknown_attr_matches_nothing(self):
        # stale predicates must select the empty set, never crash a worker
        mask = mask_for({"tier": np.arange(5)}, (FilterSpec("ghost", "eq", 1),), 5)
        assert not mask.any()

    def test_conjunction(self):
        attrs = {"tier": np.arange(10) % 5, "tenant": np.arange(10) % 2}
        clauses = (FilterSpec("tier", "in", (2, 4)), FilterSpec("tenant", "eq", 0))
        mask = mask_for(attrs, clauses, 10)
        np.testing.assert_array_equal(np.flatnonzero(mask), [2, 4])

    def test_selectivity_empty_store(self):
        assert selectivity(np.zeros(0, dtype=bool)) == 0.0


class TestChooseStrategy:
    def test_forced_strategies_pass_through(self):
        assert choose_strategy("pre", 1000, 1000, 10) == "pre"
        assert choose_strategy("post", 1, 1000, 10) == "post"

    def test_auto_below_crossover_is_pre(self):
        n_rows = 1000
        n_match = int(n_rows * CROSSOVER_SELECTIVITY) - 1
        assert choose_strategy("auto", n_match, n_rows, 5) == "pre"

    def test_auto_at_crossover_is_post(self):
        n_rows = 1000
        n_match = int(n_rows * CROSSOVER_SELECTIVITY)
        assert choose_strategy("auto", n_match, n_rows, 5) == "post"

    def test_auto_small_match_is_pre_even_above_crossover(self):
        # n_match <= k: the scan is exact and cheaper than any traversal
        assert choose_strategy("auto", 5, 10, 5) == "pre"

    def test_auto_empty_partition_is_pre(self):
        assert choose_strategy("auto", 0, 0, 5) == "pre"


class TestCacheNamespace:
    def test_unfiltered_is_empty_prefix(self):
        assert cache_namespace(None, None) == b""

    def test_tenants_get_distinct_namespaces(self):
        ns = {cache_namespace(t, None) for t in (None, 0, 1, 2)}
        assert len(ns) == 4

    def test_filters_get_distinct_namespaces(self):
        fp1 = {"clauses": [{"attr": "tier", "op": "eq", "value": 1}], "strategy": "auto"}
        fp2 = {"clauses": [{"attr": "tier", "op": "eq", "value": 2}], "strategy": "auto"}
        assert cache_namespace(None, fp1) != cache_namespace(None, fp2)

    def test_namespace_is_deterministic(self):
        fp = {"clauses": [{"attr": "tier", "op": "eq", "value": 1}], "strategy": "auto"}
        assert cache_namespace(3, fp) == cache_namespace(3, dict(fp))

    def test_result_cache_isolation(self):
        # the same query vector under two tenants must not share entries
        q = np.ones(8, dtype=np.float32)
        row = (np.zeros(3), np.arange(3))
        c1 = ResultCache(8, namespace=cache_namespace(1, None))
        c2 = ResultCache(8, namespace=cache_namespace(2, None))
        c1.put(c1.key(q), row)
        assert c1.get(c1.key(q)) is not None
        assert c2.get(c2.key(q)) is None

    def test_legacy_keys_unchanged(self):
        # namespace-less cache keys stay byte-identical to the old scheme
        q = np.ones(8, dtype=np.float32)
        assert ResultCache(8).key(q) == np.ascontiguousarray(q, dtype=np.float32).tobytes()


class TestFilteredHnswConnectivity:
    """The adversarial case: the predicate selects a far-away cluster.

    360 points sit near the origin; 40 matching points sit in a distant
    cluster.  A graph walk that pruned non-matching nodes from the
    frontier would strand queries in the origin cluster (every near
    neighbor of the entry point is masked out); keeping them in the
    frontier — the post-strategy contract — must recover the exact
    answer set that brute force over the matches produces.
    """

    K = 10

    @pytest.fixture(scope="class")
    def island(self):
        rng = np.random.default_rng(7)
        main = rng.normal(size=(360, 16)).astype(np.float32)
        far = rng.normal(size=(40, 16)).astype(np.float32) + 60.0
        X = np.concatenate([main, far])
        perm = rng.permutation(len(X))  # interleave insertion order
        X = X[perm]
        mask = perm >= 360  # the island rows, in insertion order
        idx = HnswIndex(dim=16, params=HnswParams(M=8, ef_construction=60, seed=5))
        idx.add_items(X)
        Q = far[:8] + rng.normal(scale=0.05, size=(8, 16)).astype(np.float32)
        return X, mask, idx, Q

    def _exact_over_matches(self, X, mask, q, k):
        rows = np.flatnonzero(mask)
        d = np.linalg.norm(X[rows] - q, axis=1) ** 2
        return rows[np.argsort(d, kind="stable")][:k]

    def test_filtered_traversal_reaches_island(self, island):
        X, mask, idx, Q = island
        # selectivity 0.10 = exactly the auto crossover boundary, so this
        # is the regime where the post strategy starts being chosen
        assert np.count_nonzero(mask) / len(X) == pytest.approx(
            CROSSOVER_SELECTIVITY
        )
        recalls, evals_post = [], []
        for q in Q:
            gt = self._exact_over_matches(X, mask, q, self.K)
            before = idx.n_dist_evals
            _, ids = idx.knn_search(q, self.K, filter=mask)
            evals_post.append(idx.n_dist_evals - before)
            assert np.all(mask[ids])  # predicate always honored
            recalls.append(len(np.intersect1d(ids, gt)) / self.K)
        # brute force over the matches is exact (recall 1.0); the filtered
        # traversal must match it despite the disconnected-looking mask
        assert np.mean(recalls) == pytest.approx(1.0), (
            f"filtered-HNSW recall {np.mean(recalls):.3f} < brute-force 1.0 "
            f"(n_dist_evals/query: post={np.mean(evals_post):.0f})"
        )
        assert all(e > 0 for e in evals_post)

    def test_pre_strategy_eval_count(self, island):
        # the pre strategy is a scan of exactly the matching rows: its
        # eval count is the match count, the yardstick the crossover
        # compares the traversal against
        X, mask, idx, Q = island
        n_match = int(np.count_nonzero(mask))
        rows = np.flatnonzero(mask)
        for q in Q[:2]:
            gt = self._exact_over_matches(X, mask, q, self.K)
            d = np.linalg.norm(X[rows] - q, axis=1) ** 2
            pre_ids = rows[np.argsort(d, kind="stable")][: self.K]
            np.testing.assert_array_equal(np.sort(pre_ids), np.sort(gt))
        assert n_match == 40  # evals_pre per query == n_match by construction

    def test_naive_postfilter_baseline_is_worse(self, island):
        # the baseline the ISSUE compares against: unfiltered search at
        # the same k, then drop non-matching rows.  With a 10%-selective
        # far-away island it finds (almost) nothing.
        X, mask, idx, Q = island
        naive, filtered = [], []
        for q in Q:
            gt = self._exact_over_matches(X, mask, q, self.K)
            _, raw = idx.knn_search(q, self.K)
            kept = raw[mask[raw]]
            naive.append(len(np.intersect1d(kept, gt)) / self.K)
            _, ids = idx.knn_search(q, self.K, filter=mask)
            filtered.append(len(np.intersect1d(ids, gt)) / self.K)
        assert np.mean(filtered) >= np.mean(naive)


class TestEngineFiltered:
    DIM = 16

    @pytest.fixture(scope="class")
    def corpus(self):
        X = sift_like(320, dim=self.DIM, seed=31)
        Q = sample_queries(X, 10, noise_scale=0.05, seed=32)
        rows = np.arange(len(X))
        metadata = {"tier": rows % 5, "tenant": rows % 4}
        return X, Q, metadata

    def _config(self, **kw):
        return SystemConfig(n_cores=4, cores_per_node=2, k=5, seed=3, **kw)

    def test_unfiltered_bit_identical_with_metadata(self, corpus):
        X, Q, metadata = corpus
        plain = DistributedANN(self._config())
        plain.fit(X)
        tagged = DistributedANN(self._config())
        tagged.fit(X, metadata=metadata)
        D0, I0, r0 = plain.query(Q)
        D1, I1, r1 = tagged.query(Q)
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)
        assert r0.total_seconds == r1.total_seconds
        assert r1.filtered_queries == 0 and r1.tenant_id == -1

    def test_filtered_query_restricts_ids(self, corpus):
        X, Q, metadata = corpus
        ann = DistributedANN(self._config())
        ann.fit(X, metadata=metadata)
        _, I, rep = ann.query(Q, filter="tier=2")
        real = I[I >= 0]
        assert real.size > 0
        assert np.all(real % 5 == 2)
        assert rep.filtered_queries == len(Q)
        assert rep.filter_tasks_pre + rep.filter_tasks_post > 0

    def test_filter_spec_and_conjunction(self, corpus):
        X, Q, metadata = corpus
        ann = DistributedANN(self._config())
        ann.fit(X, metadata=metadata)
        _, I, _ = ann.query(Q, filter=[FilterSpec("tier", "in", (1, 3)), "tenant=1"])
        real = I[I >= 0]
        assert real.size > 0
        assert np.all(np.isin(real % 5, (1, 3)))
        assert np.all(real % 4 == 1)

    def test_tenant_scoping_and_accounting(self, corpus):
        X, Q, metadata = corpus
        ann = DistributedANN(self._config())
        ann.fit(X, metadata=metadata)
        _, I, rep = ann.query(Q, tenant=2)
        real = I[I >= 0]
        assert real.size > 0
        assert np.all(real % 4 == 2)
        assert rep.tenant_id == 2
        assert rep.tenant_queries == len(Q)
        assert rep.metrics["counters"].get("tenant.queries") == len(Q)

    def test_forced_pre_matches_auto_results(self, corpus):
        # strategy changes cost, never the answer: pre is exact, and at
        # k <= matches-per-partition the traversal recovers the same set
        X, Q, metadata = corpus
        pre = DistributedANN(self._config(filter_strategy="pre"))
        pre.fit(X, metadata=metadata)
        _, I_pre, r_pre = pre.query(Q, filter="tier=2")
        auto = DistributedANN(self._config())
        auto.fit(X, metadata=metadata)
        _, I_auto, _ = auto.query(Q, filter="tier=2")
        np.testing.assert_array_equal(I_pre, I_auto)
        assert r_pre.filter_tasks_post == 0
        assert r_pre.filter_evals_pre > 0

    def test_config_filter_default(self, corpus):
        # the config-level --filter default applies when no per-call
        # filter is given, and a per-call filter overrides it
        X, Q, metadata = corpus
        ann = DistributedANN(self._config(filter="tier=0"))
        ann.fit(X, metadata=metadata)
        _, I, _ = ann.query(Q)
        real = I[I >= 0]
        assert np.all(real % 5 == 0)
        _, I2, _ = ann.query(Q, filter="tier=1")
        real2 = I2[I2 >= 0]
        assert np.all(real2 % 5 == 1)

    def test_unknown_attribute_filter_is_empty(self, corpus):
        X, Q, metadata = corpus
        ann = DistributedANN(self._config())
        ann.fit(X, metadata=metadata)
        _, I, rep = ann.query(Q, filter="ghost=1")
        assert np.all(I == -1)
        assert rep.filter_empty_tasks > 0

    def test_report_filter_fields_round_trip(self, corpus):
        X, Q, metadata = corpus
        ann = DistributedANN(self._config())
        ann.fit(X, metadata=metadata)
        _, _, rep = ann.query(Q, filter="tier=2", tenant=1)
        again = SearchReport.from_dict(rep.to_dict())
        for name in (
            "filtered_queries",
            "filter_tasks_pre",
            "filter_tasks_post",
            "filter_evals_pre",
            "filter_evals_post",
            "filter_empty_tasks",
            "tenant_id",
            "tenant_queries",
        ):
            assert getattr(again, name) == getattr(rep, name), name
