"""Unit tests for the k-means substrate."""

import numpy as np
import pytest

from repro.cluster import KMeans, kmeans_plus_plus_init


@pytest.fixture(scope="module")
def blobs():
    rng = np.random.default_rng(0)
    centers = np.array([[0, 0], [10, 0], [0, 10], [10, 10]], dtype=np.float64)
    X = np.concatenate([c + rng.normal(0, 0.5, size=(50, 2)) for c in centers])
    return X.astype(np.float32), centers


class TestInit:
    def test_plus_plus_spreads_centroids(self, blobs):
        X, centers = blobs
        rng = np.random.default_rng(1)
        C = kmeans_plus_plus_init(X.astype(np.float64), 4, rng)
        # each seeded centroid should be near a distinct true center
        assign = {int(np.argmin(((centers - c) ** 2).sum(1))) for c in C}
        assert len(assign) >= 3  # spread across at least 3 of 4 blobs

    def test_k_equals_n(self):
        X = np.eye(3)
        rng = np.random.default_rng(0)
        C = kmeans_plus_plus_init(X, 3, rng)
        assert C.shape == (3, 3)


class TestKMeans:
    def test_recovers_well_separated_blobs(self, blobs):
        X, centers = blobs
        km = KMeans(4, seed=2).fit(X)
        # every learned centroid close to a true center
        for c in km.centroids:
            assert np.min(((centers - c) ** 2).sum(1)) < 1.0

    def test_predict_consistent_with_fit(self, blobs):
        X, _ = blobs
        km = KMeans(4, seed=2).fit(X)
        assign = km.predict(X)
        assert assign.shape == (len(X),)
        assert set(np.unique(assign)) <= set(range(4))
        # points in the same blob share an assignment
        assert len(np.unique(assign[:50])) == 1

    def test_inertia_decreases_with_k(self, blobs):
        X, _ = blobs
        i2 = KMeans(2, seed=1).fit(X).inertia_
        i8 = KMeans(8, seed=1).fit(X).inertia_
        assert i8 < i2

    def test_empty_cluster_reseeded(self):
        # duplicate points force empty clusters; must not crash or NaN
        X = np.ones((20, 3), dtype=np.float32)
        km = KMeans(4, seed=0).fit(X)
        assert np.all(np.isfinite(km.centroids))

    def test_deterministic(self, blobs):
        X, _ = blobs
        a = KMeans(4, seed=5).fit(X)
        b = KMeans(4, seed=5).fit(X)
        assert np.array_equal(a.centroids, b.centroids)

    def test_errors(self):
        with pytest.raises(ValueError):
            KMeans(5).fit(np.ones((3, 2), dtype=np.float32))
        with pytest.raises(RuntimeError):
            KMeans(2).predict(np.ones((3, 2), dtype=np.float32))
