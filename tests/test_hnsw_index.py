"""Unit tests for the HNSW index: construction, search, invariants."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn
from repro.hnsw import HnswIndex, HnswParams, graph_stats, layer_connectivity


@pytest.fixture(scope="module")
def built_index(tiny_clustered_module):
    X, Q, gt_d, gt_i = tiny_clustered_module
    idx = HnswIndex(dim=X.shape[1], params=HnswParams(M=8, ef_construction=60, seed=1))
    idx.add_items(X)
    return idx, X, Q, gt_d, gt_i


@pytest.fixture(scope="module")
def tiny_clustered_module():
    rng = np.random.default_rng(7)
    centers = rng.normal(0, 10, size=(5, 16))
    X = np.concatenate(
        [c + rng.normal(0, 1, size=(80, 16)) for c in centers]
    ).astype(np.float32)
    Q = (X[rng.choice(len(X), 20, replace=False)] + rng.normal(0, 0.3, (20, 16))).astype(
        np.float32
    )
    gt_d, gt_i = brute_force_knn(X, Q, 5)
    return X, Q, gt_d, gt_i


class TestParams:
    def test_m0_is_double_m(self):
        assert HnswParams(M=12).M0 == 24

    def test_level_mult_formula(self):
        assert HnswParams(M=16).level_mult == pytest.approx(1.0 / np.log(16))

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            HnswParams(M=1)
        with pytest.raises(ValueError):
            HnswParams(ef_construction=0)
        with pytest.raises(ValueError):
            HnswParams(ef_search=0)


class TestConstruction:
    def test_empty_index_search(self):
        idx = HnswIndex(dim=4)
        d, i = idx.knn_search(np.zeros(4, dtype=np.float32), 3)
        assert len(d) == 0 and len(i) == 0

    def test_single_point(self):
        idx = HnswIndex(dim=4)
        idx.add(np.ones(4, dtype=np.float32), ext_id=99)
        d, i = idx.knn_search(np.ones(4, dtype=np.float32), 1)
        assert i[0] == 99 and d[0] == pytest.approx(0.0)

    def test_capacity_grows(self):
        idx = HnswIndex(dim=4, capacity=2)
        X = np.random.default_rng(0).normal(size=(50, 4)).astype(np.float32)
        idx.add_items(X)
        assert len(idx) == 50

    def test_dim_mismatch_rejected(self):
        idx = HnswIndex(dim=4)
        with pytest.raises(ValueError):
            idx.add(np.zeros(5, dtype=np.float32))
        with pytest.raises(ValueError):
            idx.add_items(np.zeros((3, 5), dtype=np.float32))

    def test_ids_length_mismatch_rejected(self):
        idx = HnswIndex(dim=4)
        with pytest.raises(ValueError, match="ids"):
            idx.add_items(np.zeros((3, 4), dtype=np.float32) + np.arange(4), ids=[1, 2])

    def test_degree_bounds_respected(self, built_index):
        idx, *_ = built_index
        for lv in range(idx.max_level + 1):
            limit = idx.params.M0 if lv == 0 else idx.params.M
            for node in idx.nodes_at_level(lv):
                assert len(idx.neighbors(int(node), lv)) <= limit

    def test_layer_sizes_decrease_geometrically(self, built_index):
        idx, *_ = built_index
        s = graph_stats(idx)
        sizes = [l["n_nodes"] for l in s["layers"]]
        assert sizes[0] == len(idx)
        for a, b in zip(sizes, sizes[1:]):
            assert b < a

    def test_entry_point_on_top_layer(self, built_index):
        idx, *_ = built_index
        assert idx.node_level(idx.entry_point) == idx.max_level

    def test_layer0_fully_connected_component(self, built_index):
        idx, *_ = built_index
        assert layer_connectivity(idx, 0) == 1.0

    def test_node_levels_are_nested(self, built_index):
        """A node present at layer L must be present at every layer below."""
        idx, *_ = built_index
        for lv in range(1, idx.max_level + 1):
            below = set(idx.nodes_at_level(lv - 1).tolist())
            for node in idx.nodes_at_level(lv).tolist():
                assert node in below


class TestSearch:
    def test_recall_above_threshold(self, built_index):
        idx, X, Q, gt_d, gt_i = built_index
        hits = 0
        for qi in range(len(Q)):
            _, ids = idx.knn_search(Q[qi], 5, ef=50)
            hits += len(set(ids) & set(gt_i[qi]))
        assert hits / (len(Q) * 5) >= 0.95

    def test_results_sorted_ascending(self, built_index):
        idx, X, Q, *_ = built_index
        d, _ = idx.knn_search(Q[0], 5)
        assert np.all(np.diff(d) >= -1e-12)

    def test_higher_ef_never_worse_recall(self, built_index):
        idx, X, Q, gt_d, gt_i = built_index
        def recall(ef):
            hits = 0
            for qi in range(len(Q)):
                _, ids = idx.knn_search(Q[qi], 5, ef=ef)
                hits += len(set(ids) & set(gt_i[qi]))
            return hits
        assert recall(100) >= recall(5)

    def test_dist_evals_counted(self, built_index):
        idx, X, Q, *_ = built_index
        before = idx.n_dist_evals
        idx.knn_search(Q[0], 5)
        assert idx.n_dist_evals > before

    def test_external_ids_returned(self):
        X = np.random.default_rng(1).normal(size=(30, 8)).astype(np.float32)
        idx = HnswIndex(dim=8, params=HnswParams(M=4, ef_construction=20))
        ids = np.arange(30) * 10 + 5
        idx.add_items(X, ids=ids)
        _, res = idx.knn_search(X[3], 1, ef=30)
        assert res[0] == 35

    def test_k_larger_than_index(self):
        X = np.random.default_rng(2).normal(size=(5, 4)).astype(np.float32)
        idx = HnswIndex(dim=4)
        idx.add_items(X)
        d, i = idx.knn_search(X[0], 10)
        assert len(i) == 5

    def test_invalid_k(self, built_index):
        idx, X, Q, *_ = built_index
        with pytest.raises(ValueError):
            idx.knn_search(Q[0], 0)


class TestMetrics:
    def test_cosine_metric_search(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(200, 16)).astype(np.float32)
        X /= np.linalg.norm(X, axis=1, keepdims=True)
        idx = HnswIndex(dim=16, metric="cosine", params=HnswParams(M=8, ef_construction=40))
        idx.add_items(X)
        gt_d, gt_i = brute_force_knn(X, X[:10], 5, metric="cosine")
        hits = 0
        for qi in range(10):
            _, ids = idx.knn_search(X[qi], 5, ef=60)
            hits += len(set(ids) & set(gt_i[qi]))
        assert hits / 50 >= 0.9

    def test_generic_metric_path(self):
        """l1 has no fast kernel: exercises the generic Metric fallback."""
        rng = np.random.default_rng(4)
        X = rng.normal(size=(100, 8)).astype(np.float32)
        idx = HnswIndex(dim=8, metric="l1", params=HnswParams(M=4, ef_construction=20))
        idx.add_items(X)
        d, i = idx.knn_search(X[0], 3, ef=30)
        assert i[0] == 0 and d[0] == pytest.approx(0.0, abs=1e-5)


class TestSelectStrategies:
    def test_simple_selection_also_works(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 8)).astype(np.float32)
        idx = HnswIndex(
            dim=8, params=HnswParams(M=6, ef_construction=40, select_heuristic=False)
        )
        idx.add_items(X)
        _, ids = idx.knn_search(X[7], 1, ef=40)
        assert ids[0] == 7

    def test_extend_candidates_path(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(120, 8)).astype(np.float32)
        idx = HnswIndex(
            dim=8,
            params=HnswParams(M=6, ef_construction=30, extend_candidates=True),
        )
        idx.add_items(X)
        assert layer_connectivity(idx, 0) == 1.0


class TestSerialization:
    def test_save_load_roundtrip(self, built_index, tmp_path):
        idx, X, Q, *_ = built_index
        path = str(tmp_path / "index.npz")
        idx.save(path)
        loaded = HnswIndex.load(path)
        assert len(loaded) == len(idx)
        assert loaded.max_level == idx.max_level
        assert loaded.entry_point == idx.entry_point
        # identical graph => identical search results
        for qi in range(5):
            d1, i1 = idx.knn_search(Q[qi], 5, ef=40)
            d2, i2 = loaded.knn_search(Q[qi], 5, ef=40)
            assert np.array_equal(i1, i2)
            assert np.allclose(d1, d2, atol=1e-5)

    def test_load_preserves_params(self, built_index, tmp_path):
        idx, *_ = built_index
        path = str(tmp_path / "index.npz")
        idx.save(path)
        loaded = HnswIndex.load(path)
        assert loaded.params.M == idx.params.M
        assert loaded.params.ef_construction == idx.params.ef_construction
