"""Unit tests for the communicator: p2p wrappers and collectives."""

import numpy as np
import pytest

from repro.simmpi import Comm, DeadlockError, Simulation
from repro.simmpi.engine import ANY_SOURCE
from repro.simmpi.errors import SimConfigError, SimError


def spmd(n, program, nodes=None):
    """Run `program(ctx, comm)` on n ranks; returns SimulationResult."""
    sim = Simulation()
    holder = {}

    def wrapper(ctx):
        return (yield from program(ctx, holder["comm"]))

    pids = [
        sim.add_proc(wrapper, node=(nodes[r] if nodes else 0), name=f"r{r}")
        for r in range(n)
    ]
    holder["comm"] = Comm(sim, pids)
    return sim.run()


class TestConstruction:
    def test_empty_comm_rejected(self):
        sim = Simulation()
        with pytest.raises(SimConfigError, match="at least one"):
            Comm(sim, [])

    def test_duplicate_pids_rejected(self):
        sim = Simulation()

        def noop(ctx):
            yield from ctx.compute(0)

        sim.add_proc(noop)
        with pytest.raises(SimConfigError, match="duplicate"):
            Comm(sim, [0, 0])

    def test_non_member_rank_raises(self):
        sim = Simulation()

        def outsider(ctx):
            comm.rank(ctx)
            yield from ctx.compute(0)

        def member(ctx):
            yield from ctx.compute(0)

        m = sim.add_proc(member)
        o = sim.add_proc(outsider)
        comm = Comm(sim, [m])
        with pytest.raises(SimError, match="not in comm"):
            sim.run()


class TestPointToPoint:
    def test_ring_exchange(self):
        def p(ctx, comm):
            r = comm.rank(ctx)
            yield from comm.send(ctx, (r + 1) % comm.size, r * 100, tag=1)
            payload, src, tag = yield from comm.recv(ctx, source=ANY_SOURCE, tag=1)
            return payload, src, tag

        out = spmd(4, p)
        for r in range(4):
            payload, src, tag = out.results[r]
            assert payload == ((r - 1) % 4) * 100
            assert src == (r - 1) % 4
            assert tag == 1

    def test_tags_namespaced_per_comm(self):
        """Two comms over the same procs must not cross-match messages."""
        sim = Simulation()
        holder = {}

        def p(ctx):
            c1, c2 = holder["c1"], holder["c2"]
            r = c1.rank(ctx)
            if r == 0:
                yield from c1.send(ctx, 1, "from-c1", tag=7)
                yield from c2.send(ctx, 1, "from-c2", tag=7)
            else:
                # receive on c2 first: must get the c2 message even though
                # the c1 message arrived earlier with the same user tag
                p2, _, _ = yield from c2.recv(ctx, tag=7)
                p1, _, _ = yield from c1.recv(ctx, tag=7)
                return p1, p2

        pids = [sim.add_proc(p, name=f"r{i}") for i in range(2)]
        holder["c1"] = Comm(sim, pids, "c1")
        holder["c2"] = Comm(sim, pids, "c2")
        out = sim.run()
        assert out.results[1] == ("from-c1", "from-c2")

    def test_irecv_wait(self):
        def p(ctx, comm):
            r = comm.rank(ctx)
            if r == 0:
                req = yield from comm.irecv(ctx, source=1, tag=3)
                yield from ctx.compute(0.5)
                val = yield from comm.wait(ctx, req)
                return val
            yield from comm.send(ctx, 0, 42, tag=3)

        assert spmd(2, p).results[0] == 42


class TestCollectives:
    def test_bcast_from_nonzero_root(self):
        def p(ctx, comm):
            data = "secret" if comm.rank(ctx) == 2 else None
            return (yield from comm.bcast(ctx, data, root=2))

        out = spmd(4, p)
        assert all(out.results[r] == "secret" for r in range(4))

    def test_gather_rank_order(self):
        def p(ctx, comm):
            return (yield from comm.gather(ctx, comm.rank(ctx) ** 2, root=1))

        out = spmd(4, p)
        assert out.results[1] == [0, 1, 4, 9]
        assert out.results[0] is None

    def test_allgather(self):
        def p(ctx, comm):
            return (yield from comm.allgather(ctx, comm.rank(ctx)))

        out = spmd(3, p)
        assert all(out.results[r] == [0, 1, 2] for r in range(3))

    def test_reduce_with_numpy(self):
        def p(ctx, comm):
            v = np.full(4, comm.rank(ctx), dtype=np.float64)
            return (
                yield from comm.reduce(ctx, v, op=lambda vs: np.sum(vs, axis=0), root=0)
            )

        out = spmd(3, p)
        assert np.array_equal(out.results[0], np.full(4, 3.0))

    def test_allreduce_sum(self):
        def p(ctx, comm):
            return (yield from comm.allreduce(ctx, comm.rank(ctx) + 1, op=sum))

        out = spmd(5, p)
        assert all(out.results[r] == 15 for r in range(5))

    def test_barrier_synchronizes_clocks(self):
        def p(ctx, comm):
            yield from ctx.compute(float(comm.rank(ctx)))
            yield from comm.barrier(ctx)
            return ctx.now

        out = spmd(4, p)
        times = [out.results[r] for r in range(4)]
        assert max(times) - min(times) < 1e-9
        assert min(times) >= 3.0  # slowest rank computed 3.0s

    def test_alltoallv_full_exchange(self):
        def p(ctx, comm):
            r = comm.rank(ctx)
            out = {d: (r, d) for d in range(comm.size) if d != r}
            inbox = yield from comm.alltoallv(ctx, out)
            return inbox

        out = spmd(3, p)
        for r in range(3):
            inbox = out.results[r]
            assert set(inbox) == {s for s in range(3) if s != r}
            for s, payload in inbox.items():
                assert payload == (s, r)

    def test_alltoallv_bad_dest_raises(self):
        def p(ctx, comm):
            yield from comm.alltoallv(ctx, {99: "x"})

        with pytest.raises(SimError, match="out of range"):
            spmd(2, p)

    def test_mismatched_collectives_deadlock(self):
        def p(ctx, comm):
            if comm.rank(ctx) == 0:
                yield from comm.barrier(ctx)
            else:
                yield from comm.bcast(ctx, 1, root=0)

        with pytest.raises(DeadlockError):
            spmd(2, p)


class TestSplit:
    def test_split_halves(self):
        def p(ctx, comm):
            r = comm.rank(ctx)
            sub = yield from comm.split(ctx, color=r // 2, key=r)
            total = yield from sub.allreduce(ctx, r, op=sum)
            return sub.size, total

        out = spmd(4, p)
        assert out.results[0] == (2, 1)   # ranks 0,1
        assert out.results[3] == (2, 5)   # ranks 2,3

    def test_split_key_orders_ranks(self):
        def p(ctx, comm):
            r = comm.rank(ctx)
            # reverse order via key
            sub = yield from comm.split(ctx, color=0, key=-r)
            return sub.rank(ctx)

        out = spmd(3, p)
        assert out.results[0] == 2 and out.results[2] == 0

    def test_recursive_split_to_singletons(self):
        def p(ctx, comm):
            c = comm
            while c.size > 1:
                half = (c.size + 1) // 2
                c = yield from c.split(ctx, color=int(c.rank(ctx) >= half), key=c.rank(ctx))
            return c.size

        out = spmd(8, p)
        assert all(out.results[r] == 1 for r in range(8))
