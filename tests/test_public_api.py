"""Snapshot test for the consolidated public API surface.

``repro.__all__`` is the supported surface; this test pins it so additions
and removals are deliberate, reviewed changes (update EXPECTED here *and*
``src/repro/__init__.py`` together).
"""

import inspect

import repro

EXPECTED = [
    "BuildReport",
    "ClusterRuntime",
    "DistributedANN",
    "FaultSpec",
    "FilterSpec",
    "HnswIndex",
    "HnswParams",
    "KDTree",
    "MetadataStore",
    "MetricsRegistry",
    "PartitionRouter",
    "ReplicaSelector",
    "Searcher",
    "SearchReport",
    "SystemConfig",
    "TraceRecorder",
    "VPTree",
    "Workgroups",
    "__version__",
]


class TestPublicApi:
    def test_all_matches_snapshot(self):
        assert sorted(repro.__all__) == sorted(EXPECTED)

    def test_no_duplicates(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_name_importable(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_classes_have_docstrings(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj):
                assert obj.__doc__, f"{name} has no docstring"

    def test_version_is_string(self):
        assert isinstance(repro.__version__, str)
        assert len(repro.__version__.split(".")) == 3
