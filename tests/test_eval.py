"""Unit tests for the evaluation package."""

import numpy as np
import pytest

from repro.eval import (
    format_histogram,
    format_table,
    load_distribution,
    per_query_recall,
    recall_at_k,
    speedup_table,
)


class TestRecall:
    def test_perfect_recall(self):
        gt = np.array([[1, 2, 3]])
        assert recall_at_k(np.array([[3, 2, 1]]), gt) == 1.0

    def test_partial_recall(self):
        gt = np.array([[1, 2, 3, 4]])
        assert recall_at_k(np.array([[1, 2, 9, 9]]), gt) == pytest.approx(0.5)

    def test_padding_ignored(self):
        gt = np.array([[1, 2]])
        assert recall_at_k(np.array([[1, -1]]), gt) == pytest.approx(0.5)

    def test_tie_tolerance(self):
        """An equidistant substitute for the k-th neighbor must count."""
        gt_ids = np.array([[1, 2]])
        gt_d = np.array([[1.0, 5.0]])
        res_ids = np.array([[1, 99]])
        res_d = np.array([[1.0, 5.0]])  # 99 is exactly as far as 2
        assert recall_at_k(res_ids, gt_ids, gt_d, res_d) == 1.0
        # without distances, it is penalized
        assert recall_at_k(res_ids, gt_ids) == pytest.approx(0.5)

    def test_per_query_shape(self):
        gt = np.tile(np.arange(3), (5, 1))
        r = per_query_recall(gt.copy(), gt)
        assert r.shape == (5,) and np.all(r == 1.0)

    def test_mismatched_rows_raise(self):
        with pytest.raises(ValueError):
            recall_at_k(np.zeros((2, 3), dtype=int), np.zeros((3, 3), dtype=int))


class TestLoad:
    def test_balanced(self):
        s = load_distribution(np.array([10, 10, 10, 10]))
        assert s.imbalance == 1.0 and s.spread() == 0
        assert s.optimal == 10.0

    def test_skewed(self):
        s = load_distribution(np.array([40, 0, 0, 0]))
        assert s.imbalance == 4.0 and s.spread() == 40
        assert s.total_tasks == 40

    def test_bad_input(self):
        with pytest.raises(ValueError):
            load_distribution(np.array([]))
        with pytest.raises(ValueError):
            load_distribution(np.zeros((2, 2)))


class TestScaling:
    def test_linear_scaling(self):
        rows = speedup_table([(32, 32.0), (64, 16.0), (128, 8.0)])
        assert [r.speedup for r in rows] == [1.0, 2.0, 4.0]
        assert all(r.efficiency == pytest.approx(1.0) for r in rows)

    def test_sublinear_efficiency_below_one(self):
        rows = speedup_table([(32, 32.0), (128, 16.0)])
        assert rows[1].speedup == 2.0
        assert rows[1].efficiency == pytest.approx(0.5)

    def test_unsorted_input_sorted_output(self):
        rows = speedup_table([(128, 8.0), (32, 32.0)])
        assert rows[0].cores == 32

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            speedup_table([])


class TestReporting:
    def test_table_contains_all_cells(self):
        t = format_table(["a", "b"], [[1, 2.5], [3, 4.0]], title="T")
        assert "T" in t and "2.5" in t and "3" in t

    def test_histogram_runs(self):
        h = format_histogram(np.random.default_rng(0).normal(size=100), bins=5)
        assert h.count("\n") >= 4

    def test_histogram_empty(self):
        assert "empty" in format_histogram(np.array([]), title="x")
