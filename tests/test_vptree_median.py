"""Unit tests for the distributed selection (median of medians)."""

import numpy as np
import pytest

from repro.simmpi import Comm, Simulation
from repro.vptree.median import distributed_select, weighted_median


def run_select(chunks, k):
    """Run distributed_select over the given per-rank value chunks."""
    sim = Simulation()
    holder = {}

    def p(ctx):
        comm = holder["comm"]
        r = comm.rank(ctx)
        return (yield from distributed_select(ctx, comm, chunks[r], k))

    pids = [sim.add_proc(p, name=f"r{i}") for i in range(len(chunks))]
    holder["comm"] = Comm(sim, pids)
    out = sim.run()
    return [out.results[p_] for p_ in pids]


class TestWeightedMedian:
    def test_uniform_weights_is_median(self):
        v = np.array([5.0, 1.0, 3.0])
        w = np.ones(3)
        assert weighted_median(v, w) == 3.0

    def test_heavy_weight_dominates(self):
        v = np.array([1.0, 100.0])
        w = np.array([10.0, 1.0])
        assert weighted_median(v, w) == 1.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            weighted_median(np.array([]), np.array([]))


class TestDistributedSelect:
    @pytest.mark.parametrize("n_ranks", [1, 2, 4, 7])
    def test_matches_serial_kth(self, n_ranks):
        rng = np.random.default_rng(n_ranks)
        allv = rng.normal(size=503)
        chunks = np.array_split(allv, n_ranks)
        srt = np.sort(allv)
        for k in (1, 252, 503):
            res = run_select(chunks, k)
            assert all(r == pytest.approx(srt[k - 1]) for r in res)

    def test_large_input_uses_pivot_rounds(self):
        """More elements than the gather limit: must still be exact."""
        rng = np.random.default_rng(9)
        allv = rng.normal(size=20_000)
        chunks = np.array_split(allv, 4)
        k = 10_000
        res = run_select(chunks, k)
        assert res[0] == pytest.approx(np.sort(allv)[k - 1])

    def test_many_duplicates(self):
        allv = np.concatenate([np.zeros(5000), np.ones(5000)])
        chunks = np.array_split(allv, 4)
        assert run_select(chunks, 5000)[0] == 0.0
        assert run_select(chunks, 5001)[0] == 1.0

    def test_uneven_chunks_including_empty(self):
        chunks = [np.array([1.0, 2.0, 3.0]), np.array([]), np.array([4.0, 5.0])]
        assert run_select(chunks, 3)[0] == 3.0

    def test_out_of_range_k(self):
        with pytest.raises(Exception, match="out of range"):
            run_select([np.array([1.0])], 2)

    def test_all_ranks_agree(self):
        rng = np.random.default_rng(11)
        chunks = [rng.normal(size=100) for _ in range(6)]
        res = run_select(chunks, 300)
        assert len(set(res)) == 1
