"""Unit tests for the dataset substrate (generators, queries, catalog)."""

import numpy as np
import pytest

from repro.datasets import (
    DATASET_CATALOG,
    MDCGenConfig,
    cluster_queries,
    deep_like,
    gist_like,
    load_dataset,
    mdcgen,
    sample_queries,
    sift_like,
    uniform_queries,
    zipf_queries,
    zipf_query_targets,
)


class TestMDCGen:
    def test_shapes_and_labels(self):
        cfg = MDCGenConfig(n_points=1000, dim=8, n_clusters=4, seed=1)
        X, y, centroids = mdcgen(cfg)
        assert X.shape == (1000, 8) and X.dtype == np.float32
        assert y.shape == (1000,)
        assert centroids.shape == (4, 8)

    def test_outlier_fraction(self):
        cfg = MDCGenConfig(n_points=2000, dim=4, outlier_fraction=0.05, seed=2)
        X, y, _ = mdcgen(cfg)
        assert (y == -1).sum() == 100

    def test_cluster_sizes_cover_all_points(self):
        cfg = MDCGenConfig(n_points=777, dim=4, n_clusters=3, seed=3)
        X, y, _ = mdcgen(cfg)
        assert len(X) == 777
        assert set(np.unique(y)) <= set(range(-1, 3))

    def test_deterministic(self):
        cfg = MDCGenConfig(n_points=300, dim=4, seed=9)
        X1, y1, c1 = mdcgen(cfg)
        X2, y2, c2 = mdcgen(cfg)
        assert np.array_equal(X1, X2) and np.array_equal(y1, y2)

    def test_points_are_clustered(self):
        """Within-cluster spread must be far below the inter-centroid span."""
        cfg = MDCGenConfig(n_points=2000, dim=8, n_clusters=4, compactness=0.02, seed=4)
        X, y, centroids = mdcgen(cfg)
        for c in range(4):
            pts = X[y == c].astype(np.float64)
            spread = np.linalg.norm(pts - pts.mean(0), axis=1).mean()
            assert spread < 0.1 * cfg.domain

    def test_weights_respected(self):
        cfg = MDCGenConfig(
            n_points=1000, dim=4, n_clusters=2, weights=(3.0, 1.0),
            outlier_fraction=0.0, seed=5,
        )
        X, y, _ = mdcgen(cfg)
        assert abs((y == 0).sum() - 750) <= 1

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            MDCGenConfig(n_points=10, dim=4, distributions="weird")
        with pytest.raises(ValueError):
            MDCGenConfig(n_points=10, dim=4, outlier_fraction=1.5)
        with pytest.raises(ValueError):
            MDCGenConfig(n_points=10, dim=4, n_clusters=3, weights=(1.0, 2.0))


class TestDescriptors:
    def test_sift_range_and_quantization(self):
        X = sift_like(500, seed=0)
        assert X.shape == (500, 128)
        assert X.min() >= 0 and X.max() <= 255
        assert np.array_equal(X, np.floor(X))  # quantized

    def test_sift_unquantized(self):
        X = sift_like(100, seed=0, quantize=False)
        assert not np.array_equal(X, np.floor(X))

    def test_deep_unit_norm(self):
        X = deep_like(300, seed=1)
        assert X.shape == (300, 96)
        norms = np.linalg.norm(X.astype(np.float64), axis=1)
        assert np.allclose(norms, 1.0, atol=1e-5)

    def test_gist_high_dim_bounded(self):
        X = gist_like(100, seed=2)
        assert X.shape == (100, 960)
        assert X.min() >= 0 and X.max() <= 0.81

    def test_descriptors_are_clustered_not_uniform(self):
        """Near-neighbor distances must be far below random-pair distances —
        the property that makes these corpora realistic for ANN."""
        X = sift_like(1000, seed=3).astype(np.float64)
        rng = np.random.default_rng(0)
        idx = rng.choice(1000, 50, replace=False)
        from repro.metrics import get_metric

        m = get_metric("l2")
        near = np.mean([np.sort(m.one_to_many(X[i], X))[1] for i in idx])
        far = np.mean([m.one_to_many(X[i], X).mean() for i in idx])
        assert near < 0.5 * far


class TestQueries:
    def test_cluster_queries_inside_box(self):
        c = np.full(8, 50.0)
        Q = cluster_queries(c, 100, compactness=0.01, domain=100.0, seed=0)
        assert Q.shape == (100, 8)
        assert np.all(np.abs(Q - 50.0) <= 1.0 + 1e-5)

    def test_uniform_queries_span_domain(self):
        Q = uniform_queries(500, 4, 0.0, 10.0, seed=1)
        assert Q.min() >= 0 and Q.max() <= 10
        assert Q.max() - Q.min() > 8  # actually spans

    def test_sample_queries_from_dataset(self):
        X = sift_like(200, seed=4)
        Q = sample_queries(X, 50, noise_scale=0.0, seed=5)
        # zero noise => every query is an exact dataset row
        as_set = {tuple(row) for row in X.tolist()}
        assert all(tuple(q) in as_set for q in Q.tolist())

    def test_sample_queries_with_noise_differ(self):
        X = sift_like(200, seed=4)
        Q = sample_queries(X, 50, noise_scale=0.1, seed=5)
        as_set = {tuple(row) for row in X.tolist()}
        assert not all(tuple(q) in as_set for q in Q.tolist())


class TestZipfQueries:
    def test_targets_deterministic_and_in_range(self):
        a = zipf_query_targets(500, 16, skew=1.1, seed=9)
        b = zipf_query_targets(500, 16, skew=1.1, seed=9)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 16

    def test_skew_concentrates_mass(self):
        flat = zipf_query_targets(4000, 16, skew=0.0, seed=2)
        hot = zipf_query_targets(4000, 16, skew=2.0, seed=2)
        top_flat = np.mean(flat == 0)
        top_hot = np.mean(hot == 0)
        assert abs(top_flat - 1 / 16) < 0.03  # skew 0 is uniform
        assert top_hot > 0.5  # skew 2 hammers the head

    def test_queries_cluster_near_their_anchor(self):
        rng = np.random.default_rng(0)
        anchors = (rng.normal(size=(8, 12)) * 100).astype(np.float32)
        Q = zipf_queries(anchors, 200, skew=1.5, compactness=0.001, seed=3)
        assert Q.shape == (200, 12) and Q.dtype == np.float32
        d = np.linalg.norm(Q[:, None, :] - anchors[None, :, :], axis=2)
        # each query sits closest to the anchor it jittered from
        targets = zipf_query_targets(200, 8, skew=1.5, seed=3)
        np.testing.assert_array_equal(np.argmin(d, axis=1), targets)

    def test_queries_deterministic(self):
        anchors = np.eye(4, dtype=np.float32)
        np.testing.assert_array_equal(
            zipf_queries(anchors, 50, seed=7), zipf_queries(anchors, 50, seed=7)
        )

    def test_different_seeds_differ(self):
        a = zipf_query_targets(500, 16, skew=1.1, seed=9)
        c = zipf_query_targets(500, 16, skew=1.1, seed=10)
        assert not np.array_equal(a, c)
        anchors = np.eye(4, dtype=np.float32)
        assert not np.array_equal(
            zipf_queries(anchors, 50, seed=7), zipf_queries(anchors, 50, seed=8)
        )

    def test_zero_skew_is_uniform(self):
        flat = zipf_query_targets(8000, 8, skew=0.0, seed=5)
        counts = np.bincount(flat, minlength=8) / 8000
        # every rank within sampling noise of 1/8
        np.testing.assert_allclose(counts, 1 / 8, atol=0.02)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_query_targets(10, 0, skew=1.0)
        with pytest.raises(ValueError):
            zipf_query_targets(10, 4, skew=-1.0)


class TestCatalog:
    def test_catalog_matches_table1(self):
        """Names, dims and paper-scale counts of Table I."""
        expect = {
            "ANN_SIFT1B": (1_000_000_000, 128, 10_000),
            "DEEP1B": (1_000_000_000, 96, 10_000),
            "ANN_GIST1M": (1_000_000, 960, 1_000),
            "SYN_1M": (1_000_000, 512, 10_000),
            "SYN_10M": (10_000_000, 256, 10_000),
        }
        assert set(DATASET_CATALOG) == set(expect)
        for name, (n, dim, nq) in expect.items():
            spec = DATASET_CATALOG[name]
            assert spec.paper_n_points == n
            assert spec.dim == dim
            assert spec.paper_n_queries == nq

    def test_load_dataset_ground_truth_is_exact(self):
        ds = load_dataset("SYN_1M", n_points=500, n_queries=10, k=5, seed=1)
        assert ds.X.shape == (500, 512)
        assert ds.gt_ids.shape == (10, 5)
        # ground truth distances are ascending
        assert np.all(np.diff(ds.gt_dists, axis=1) >= -1e-9)

    def test_load_unknown_raises(self):
        with pytest.raises(KeyError, match="available"):
            load_dataset("NOPE")

    @pytest.mark.parametrize("name", list(DATASET_CATALOG))
    def test_every_entry_loads(self, name):
        ds = load_dataset(name, n_points=300, n_queries=5, k=3, seed=0)
        assert ds.n_points == 300 and ds.n_queries == 5
        assert ds.X.shape[1] == DATASET_CATALOG[name].dim
