"""Tests for the extensibility seam: alternative local indexes and
incremental insertion."""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.core.localindex import (
    BruteForceSearcher,
    IvfPqLocalSearcher,
    VPTreeLocalSearcher,
    attach_local_indexes,
)
from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import recall_at_k
from repro.hnsw import HnswParams
from repro.simmpi import CostModel


@pytest.fixture(scope="module")
def fitted():
    X = sift_like(1600, dim=32, seed=61)
    Q = sample_queries(X, 40, noise_scale=0.05, seed=62)
    gt_d, gt_i = brute_force_knn(X, Q, 10)
    ann = DistributedANN(
        SystemConfig(
            n_cores=4,
            cores_per_node=2,
            k=10,
            hnsw=HnswParams(M=8, ef_construction=40, seed=61),
            n_probe=4,  # probe everything: recall limited only by local search
            seed=61,
        )
    )
    ann.fit(X)
    return ann, X, Q, gt_d, gt_i


class TestAlternativeLocalIndexes:
    def test_brute_force_local_search_is_exact(self, fitted):
        ann, X, Q, gt_d, gt_i = fitted
        searcher = BruteForceSearcher(CostModel())
        D, I, rep = ann.query_with_searcher(Q, 10, searcher)
        assert recall_at_k(I, gt_i, gt_d, D) == 1.0

    def test_vptree_local_search_is_exact(self, fitted):
        ann, X, Q, gt_d, gt_i = fitted
        attach_local_indexes(ann, "vptree", seed=1)
        try:
            searcher = VPTreeLocalSearcher(CostModel())
            D, I, rep = ann.query_with_searcher(Q, 10, searcher)
            assert recall_at_k(I, gt_i, gt_d, D) == 1.0
        finally:
            attach_local_indexes_restore(ann)

    def test_vptree_cheaper_than_brute_in_low_dim(self):
        """VP pruning pays off where it should: low-dimensional data.
        (At 32-d with 400-point buckets the prune radius barely bites —
        the same dimensionality effect the paper discusses.)"""
        rng = np.random.default_rng(70)
        X = rng.normal(0, 5, size=(1600, 4)).astype(np.float32)
        Q = (X[:30] + rng.normal(0, 0.2, (30, 4))).astype(np.float32)
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=5,
                hnsw=HnswParams(M=8, ef_construction=40, seed=70), n_probe=4, seed=70,
            )
        )
        ann.fit(X)
        brute = BruteForceSearcher(CostModel())
        _, _, rep_b = ann.query_with_searcher(Q, 5, brute)
        attach_local_indexes(ann, "vptree", seed=1)
        _, _, rep_v = ann.query_with_searcher(Q, 5, VPTreeLocalSearcher(CostModel()))
        assert rep_v.worker_breakdown["compute"] < rep_b.worker_breakdown["compute"]

    def test_ivfpq_local_search_lossy_but_useful(self, fitted):
        ann, X, Q, gt_d, gt_i = fitted
        attach_local_indexes(ann, "ivfpq", n_cells=8, n_subspaces=4, n_centroids=32, seed=1)
        try:
            searcher = IvfPqLocalSearcher(CostModel(), n_probe_cells=8)
            D, I, rep = ann.query_with_searcher(Q, 10, searcher)
            rec = recall_at_k(I, gt_i)
            # compressed: clearly below exact, clearly above chance
            assert 0.2 <= rec < 0.999
        finally:
            attach_local_indexes_restore(ann)

    def test_wrong_index_type_raises(self, fitted):
        ann, X, Q, *_ = fitted
        searcher = VPTreeLocalSearcher(CostModel())  # partitions hold HNSW
        with pytest.raises(Exception, match="expected VPTree"):
            ann.query_with_searcher(Q[:2], 5, searcher)

    def test_unknown_kind_raises(self, fitted):
        ann, *_ = fitted
        with pytest.raises(ValueError, match="unknown local index"):
            attach_local_indexes(ann, "quantum")


def attach_local_indexes_restore(ann) -> None:
    """Rebuild the original HNSW local indexes after a swap."""
    from repro.hnsw import HnswIndex

    for p in ann.partitions.values():
        idx = HnswIndex(
            dim=p.points.shape[1], params=ann.config.hnsw, metric=ann.config.metric,
            capacity=max(p.n_points, 16),
        )
        if p.n_points:
            idx.add_items(p.points, p.ids)
        p.index = idx


class TestIncrementalAdd:
    def test_added_points_are_findable(self):
        X = sift_like(800, dim=32, seed=63)
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=5,
                hnsw=HnswParams(M=8, ef_construction=40, seed=63), n_probe=4, seed=63,
            )
        )
        ann.fit(X)
        new = sift_like(50, dim=32, seed=64) + 1.0
        new_ids = ann.add_points(new)
        assert len(new_ids) == 50 and new_ids.min() >= 800
        D, I, _ = ann.query(new, k=1)
        # each new point must be its own nearest neighbor
        assert (I[:, 0] == new_ids).mean() >= 0.95

    def test_partition_bookkeeping_consistent(self):
        X = sift_like(400, dim=32, seed=65)
        ann = DistributedANN(
            SystemConfig(
                n_cores=2, cores_per_node=2, k=5,
                hnsw=HnswParams(M=8, ef_construction=40, seed=65), n_probe=2, seed=65,
            )
        )
        ann.fit(X)
        ann.add_points(sift_like(30, dim=32, seed=66))
        total = sum(p.n_points for p in ann.partitions.values())
        assert total == 430
        for p in ann.partitions.values():
            assert len(p.index) == p.n_points
            assert len(p.ids) == p.n_points

    def test_explicit_ids_respected(self):
        X = sift_like(200, dim=32, seed=67)
        ann = DistributedANN(
            SystemConfig(
                n_cores=2, cores_per_node=2, k=3,
                hnsw=HnswParams(M=8, ef_construction=30, seed=67), n_probe=2, seed=67,
            )
        )
        ann.fit(X)
        ids = ann.add_points(X[:3] + 0.5, ids=np.array([9001, 9002, 9003]))
        assert list(ids) == [9001, 9002, 9003]

    def test_modeled_mode_rejected(self):
        X = sift_like(200, dim=32, seed=68)
        ann = DistributedANN(
            SystemConfig(n_cores=2, cores_per_node=2, searcher="modeled", seed=68)
        )
        ann.fit(X)
        with pytest.raises(RuntimeError, match="real"):
            ann.add_points(X[:2])

    def test_dim_mismatch_rejected(self):
        X = sift_like(200, dim=32, seed=69)
        ann = DistributedANN(
            SystemConfig(
                n_cores=2, cores_per_node=2,
                hnsw=HnswParams(M=8, ef_construction=30), seed=69,
            )
        )
        ann.fit(X)
        with pytest.raises(ValueError, match="-d"):
            ann.add_points(np.ones((2, 16), dtype=np.float32))
