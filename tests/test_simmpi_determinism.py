"""Determinism tests: the whole point of a seeded DES.

A fixed seed must reproduce identical virtual clocks, identical message
orders, and identical results — across runs and regardless of host timing.
"""

import numpy as np

from repro.simmpi import Comm, Simulation


def build_and_run(n_ranks, seed):
    sim = Simulation()
    holder = {}

    def program(ctx):
        comm = holder["comm"]
        r = comm.rank(ctx)
        rng = np.random.default_rng([seed, r])
        trace = []
        for round_ in range(5):
            work = float(rng.random() * 1e-3)
            yield from ctx.compute(work, kind="w")
            dest = int(rng.integers(0, comm.size))
            if dest != r:
                yield from comm.send(ctx, dest, (r, round_), tag=round_)
            n_in = yield from comm.allreduce(
                ctx, 1 if dest != r else 0, op=sum
            )
            # drain everything sent this round (matched by tag)
            mine = yield from comm.allreduce(
                ctx, [(dest, 1 if dest != r else 0)], op=lambda ls: sum(ls, [])
            )
            expect = sum(c for d, c in mine if d == r)
            for _ in range(expect):
                payload, src, tag = yield from comm.recv(ctx, tag=round_)
                trace.append((round_, src, payload))
        return trace, ctx.now

    pids = [sim.add_proc(program, node=i // 4, name=f"r{i}") for i in range(n_ranks)]
    holder["comm"] = Comm(sim, pids)
    out = sim.run()
    return out


class TestDeterminism:
    def test_identical_runs(self):
        a = build_and_run(8, seed=3)
        b = build_and_run(8, seed=3)
        assert a.makespan == b.makespan
        assert a.n_events == b.n_events
        for pid in a.results:
            assert a.results[pid] == b.results[pid]
            assert a.clocks[pid] == b.clocks[pid]

    def test_different_seed_changes_schedule(self):
        a = build_and_run(8, seed=3)
        b = build_and_run(8, seed=4)
        assert a.makespan != b.makespan

    def test_stats_reproducible(self):
        a = build_and_run(6, seed=9)
        b = build_and_run(6, seed=9)
        for pid in a.stats:
            assert a.stats[pid].compute == b.stats[pid].compute
            assert a.stats[pid].comm_wait == b.stats[pid].comm_wait
            assert a.stats[pid].msgs_sent == b.stats[pid].msgs_sent
