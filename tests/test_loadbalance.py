"""Unit and integration tests for replica selection (repro.loadbalance)."""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.core.replication import Workgroups
from repro.hnsw import HnswParams
from repro.loadbalance import (
    SELECTORS,
    LeastLoadedSelector,
    LoadTracker,
    PowerOfTwoChoicesSelector,
    PrimarySelector,
    RoundRobinSelector,
    make_selector,
)
from repro.simmpi.errors import SimConfigError


class TestLoadTracker:
    def test_backlog_extends_and_drains(self):
        t = LoadTracker(2, task_cost_hint=1.0)
        t.record_dispatch(0, now=0.0)
        t.record_dispatch(0, now=0.0)
        assert t.backlog(0, 0.0) == pytest.approx(2.0)
        assert t.backlog(0, 1.5) == pytest.approx(0.5)  # drains with the clock
        assert t.backlog(0, 5.0) == 0.0  # never negative
        assert t.backlog(1, 0.0) == 0.0

    def test_busy_horizon_starts_at_now(self):
        # a dispatch to an idle core queues from `now`, not from the last horizon
        t = LoadTracker(1, task_cost_hint=1.0)
        t.record_dispatch(0, now=0.0)
        t.record_dispatch(0, now=10.0)
        assert t.busy_until[0] == pytest.approx(11.0)

    def test_batch_and_cost_overrides(self):
        t = LoadTracker(1, task_cost_hint=2.0)
        t.record_dispatch(0, now=0.0, n_tasks=3)
        assert t.backlog(0, 0.0) == pytest.approx(6.0)
        t.record_dispatch(0, now=0.0, cost=0.5)
        assert t.backlog(0, 0.0) == pytest.approx(6.5)
        assert t.dispatched[0] == 4

    def test_queue_depth_in_tasks(self):
        t = LoadTracker(2, task_cost_hint=0.5)
        t.record_dispatch(0, now=0.0)
        t.record_dispatch(1, now=0.0)
        assert t.queue_depth(0, 0.0) == pytest.approx(1.0)
        assert t.total_queued(0.0) == pytest.approx(2.0)

    def test_timeline_records_dispatches(self):
        t = LoadTracker(1, task_cost_hint=1.0)
        assert t.timeline().shape == (0, 2)
        t.record_dispatch(0, now=1.0)
        t.record_dispatch(0, now=2.0)
        tl = t.timeline()
        assert tl.shape == (2, 2)
        np.testing.assert_allclose(tl[:, 0], [1.0, 2.0])

    def test_invalid_cores(self):
        with pytest.raises(SimConfigError):
            LoadTracker(0, 1.0)


class TestSelectors:
    def test_primary_is_workgroup_pointer(self):
        wg = Workgroups(6, 3, seed=9)
        ref = Workgroups(6, 3, seed=9)
        sel = PrimarySelector(wg)
        picks = [sel.pick(p, 0.0) for p in range(6) for _ in range(4)]
        expected = [ref.next_core(p) for p in range(6) for _ in range(4)]
        assert picks == expected

    def test_primary_advances_shared_state(self):
        # failover excursions through the same Workgroups advance primary's cycle
        wg = Workgroups(4, 2)
        sel = PrimarySelector(wg)
        assert sel.pick(0, 0.0) == 0
        wg.next_core(0)
        assert sel.pick(0, 0.0) == 0  # pointer wrapped past 1

    def test_round_robin_starts_at_zero_and_cycles(self):
        sel = RoundRobinSelector(Workgroups(5, 2, seed=77))
        assert [sel.pick(0, 0.0) for _ in range(4)] == [0, 1, 0, 1]
        assert sel.pick(3, 0.0) == 3  # unaffected by seeded workgroup offsets

    def test_least_loaded_follows_backlog(self):
        wg = Workgroups(4, 2)
        sel = LeastLoadedSelector(wg, LoadTracker(4, 1.0))
        sel.tracker.record_dispatch(0, now=0.0)
        assert sel.pick(0, 0.0) == 1  # core 0 busy -> pick 1
        sel.tracker.record_dispatch(1, now=0.0)
        sel.tracker.record_dispatch(1, now=0.0)
        assert sel.pick(0, 0.0) == 0

    def test_least_loaded_ties_break_low(self):
        sel = LeastLoadedSelector(Workgroups(4, 3))
        assert sel.pick(0, 0.0) == 0

    def test_power_of_two_is_seeded_deterministic(self):
        a = PowerOfTwoChoicesSelector(Workgroups(8, 4), LoadTracker(8, 1.0), seed=3)
        b = PowerOfTwoChoicesSelector(Workgroups(8, 4), LoadTracker(8, 1.0), seed=3)
        assert [a.pick(p % 8, 0.0) for p in range(32)] == [
            b.pick(p % 8, 0.0) for p in range(32)
        ]

    def test_power_of_two_prefers_less_loaded(self):
        # with r=2 the two samples are always both replicas: must avoid the busy one
        sel = PowerOfTwoChoicesSelector(Workgroups(4, 2), LoadTracker(4, 1.0), seed=0)
        sel.tracker.record_dispatch(0, now=0.0)
        assert all(sel.pick(0, 0.0) == 1 for _ in range(8))

    @pytest.mark.parametrize("name", SELECTORS)
    def test_exclude_and_exhaustion(self, name):
        sel = make_selector(name, Workgroups(4, 2), LoadTracker(4, 1.0), seed=1)
        for _ in range(4):
            assert sel.pick(0, 0.0, exclude={0}) == 1
        assert sel.pick(0, 0.0, exclude={0, 1}) is None

    @pytest.mark.parametrize("name", SELECTORS)
    def test_picks_stay_in_workgroup(self, name):
        wg = Workgroups(8, 3, seed=5)
        sel = make_selector(name, wg, LoadTracker(8, 1.0), seed=2)
        for p in range(8):
            for _ in range(5):
                assert sel.pick(p, 0.0) in wg.cores_for_partition(p)

    def test_make_selector_rejects_unknown(self):
        with pytest.raises(SimConfigError, match="replica_selector"):
            make_selector("busiest", Workgroups(4, 2))

    def test_default_tracker_attached(self):
        sel = make_selector("least_loaded", Workgroups(4, 2))
        assert sel.tracker.n_cores == 4


class TestEndToEnd:
    """Selector choice moves tasks between replicas, never changes results."""

    BASE = dict(
        n_cores=8,
        cores_per_node=2,
        k=5,
        hnsw=HnswParams(M=8, ef_construction=40, seed=13),
        n_probe=2,
        replication_factor=2,
        seed=13,
    )

    @pytest.fixture(scope="class")
    def data(self):
        rng = np.random.default_rng(31)
        X = rng.normal(size=(600, 16)).astype(np.float32)
        Q = X[rng.choice(600, 40, replace=False)] + rng.normal(
            scale=0.01, size=(40, 16)
        ).astype(np.float32)
        return X, Q.astype(np.float32)

    def _run(self, data, **kw):
        X, Q = data
        ann = DistributedANN(SystemConfig(**{**self.BASE, **kw}))
        ann.fit(X)
        return ann.query(Q, k=5)

    @pytest.mark.parametrize("selector", SELECTORS[1:])
    def test_results_identical_to_primary(self, data, selector):
        D0, I0, rep0 = self._run(data)
        D1, I1, rep1 = self._run(data, replica_selector=selector)
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_allclose(D0, D1)
        assert rep0.tasks == rep1.tasks

    def test_report_carries_load_metrics(self, data):
        _, _, rep = self._run(data, replica_selector="least_loaded")
        assert rep.core_busy_seconds is not None
        assert rep.core_busy_seconds.shape == (self.BASE["n_cores"],)
        assert rep.imbalance_factor >= 1.0
        assert rep.queue_depth_timeline is not None
        assert rep.queue_depth_timeline.shape[1] == 2
        # dispatch times are non-decreasing in virtual time
        assert np.all(np.diff(rep.queue_depth_timeline[:, 0]) >= 0)

    def test_selector_composes_with_faults(self, data):
        from repro.faults import FaultSpec, RankCrash

        X, Q = data
        base = {**self.BASE, "cores_per_node": 1, "n_cores": 4, "one_sided": False}
        ann = DistributedANN(
            SystemConfig(
                **base,
                replica_selector="least_loaded",
                fault_spec=FaultSpec(crashes=(RankCrash(node=1, at=0.0),)),
            )
        )
        ann.fit(X)
        Df, If, repf = ann.query(Q, k=5)
        # the crashed rank's tasks fail over to live replicas; with r=2 the
        # crash is fully masked and the load metrics still come through
        assert np.all(repf.completeness == 1.0)
        assert repf.failovers > 0
        assert repf.core_busy_seconds is not None
        assert repf.queue_depth_timeline is not None
