"""Unit tests for deterministic RNG fan-out."""

import numpy as np

from repro.utils.rng import rng_for, spawn_rngs


class TestSpawnRngs:
    def test_same_seed_same_streams(self):
        a = spawn_rngs(42, 3)
        b = spawn_rngs(42, 3)
        for x, y in zip(a, b):
            assert np.array_equal(x.random(5), y.random(5))

    def test_streams_are_distinct(self):
        a, b = spawn_rngs(42, 2)
        assert not np.array_equal(a.random(10), b.random(10))

    def test_spawn_from_generator(self):
        parent = np.random.default_rng(1)
        children = spawn_rngs(parent, 2)
        assert len(children) == 2
        assert not np.array_equal(children[0].random(5), children[1].random(5))


class TestRngFor:
    def test_reproducible(self):
        assert np.array_equal(
            rng_for(7, "rank", 3).random(4), rng_for(7, "rank", 3).random(4)
        )

    def test_path_components_distinguish(self):
        a = rng_for(7, "rank", 3).random(8)
        b = rng_for(7, "rank", 4).random(8)
        c = rng_for(7, "node", 3).random(8)
        assert not np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_string_and_int_paths_mix(self):
        g = rng_for(0, "vpbuild", 2, "x")
        assert 0.0 <= g.random() < 1.0
