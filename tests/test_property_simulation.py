"""Property-based tests on the simulation engine's invariants.

The correctness of every benchmark number rests on these: virtual clocks
never go backwards, messages are neither lost nor duplicated, and the
makespan is insensitive to the order in which procs were registered.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simmpi import Comm, Simulation


@st.composite
def comm_script(draw):
    """A random but deadlock-free SPMD script: per round, a permutation
    tells every rank whom to message; everyone sends one and receives one."""
    n_ranks = draw(st.integers(2, 6))
    n_rounds = draw(st.integers(1, 5))
    rounds = []
    for _ in range(n_rounds):
        perm = draw(st.permutations(list(range(n_ranks))))
        compute = draw(
            st.lists(
                st.floats(0, 1e-3, allow_nan=False), min_size=n_ranks, max_size=n_ranks
            )
        )
        rounds.append((list(perm), compute))
    return n_ranks, rounds


def run_script(n_ranks, rounds, order=None):
    sim = Simulation()
    holder = {}
    order = order or list(range(n_ranks))

    def program(ctx, rank):
        comm = holder["comm"]
        clocks = [ctx.now]
        received = []
        for perm, compute in rounds:
            yield from ctx.compute(compute[rank], kind="w")
            dest = perm[rank]
            src = perm.index(rank)
            yield from comm.send(ctx, dest, (rank, len(received)), tag=0)
            payload, s, _ = yield from comm.recv(ctx, source=src, tag=0)
            received.append(payload)
            clocks.append(ctx.now)
        return clocks, received

    pids = {}
    for rank in order:
        pids[rank] = sim.add_proc(program, rank, name=f"r{rank}")
    # comm rank i == logical rank i regardless of registration order
    holder["comm"] = Comm(sim, [pids[r] for r in range(n_ranks)])
    out = sim.run()
    return out, {r: out.results[pids[r]] for r in range(n_ranks)}


@settings(max_examples=30, deadline=None)
@given(script=comm_script())
def test_clocks_monotone(script):
    n_ranks, rounds = script
    _, results = run_script(n_ranks, rounds)
    for clocks, _ in results.values():
        assert all(b >= a for a, b in zip(clocks, clocks[1:]))


@settings(max_examples=30, deadline=None)
@given(script=comm_script())
def test_messages_neither_lost_nor_duplicated(script):
    n_ranks, rounds = script
    _, results = run_script(n_ranks, rounds)
    # every sent (sender, round) pair is received exactly once globally
    all_received = [p for _, received in results.values() for p in received]
    assert len(all_received) == n_ranks * len(rounds)
    assert len(set(all_received)) == len(all_received)


@settings(max_examples=20, deadline=None)
@given(script=comm_script(), data=st.data())
def test_registration_order_does_not_change_times(script, data):
    n_ranks, rounds = script
    out1, res1 = run_script(n_ranks, rounds)
    order = data.draw(st.permutations(list(range(n_ranks))))
    out2, res2 = run_script(n_ranks, rounds, order=list(order))
    assert out1.makespan == out2.makespan
    for r in range(n_ranks):
        assert res1[r][0] == res2[r][0]  # identical per-rank clock traces
