"""Bit-equivalence of the flattened HNSW hot path.

Every optimisation in ``repro.hnsw.index`` — flat adjacency, epoch-stamped
visited sets, fast kernels, the incremental shrink cache, the compiled C
search layer — is required to be behaviour-preserving down to the bit (see
docs/performance.md).  These tests pin that contract three ways:

1. the flat backend against :class:`ReferenceHnswIndex` on every metric,
   including the logical ``n_dist_evals`` charge,
2. the native (C) search layer against the pure-python traversal on the
   very same index,
3. embedded golden eval counts + result hashes for a fixed seeded build,
   so a silent behaviour change anywhere in the stack fails loudly,

plus the save -> load -> search round-trip, which must preserve both the
non-default params and the exact search results.
"""

import hashlib

import numpy as np
import pytest

from repro.hnsw import HnswIndex, HnswParams
from repro.hnsw.reference import ReferenceHnswIndex


def _make_data(n=300, dim=16, nq=12, seed=11):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 8, size=(4, dim))
    X = np.concatenate(
        [c + rng.normal(0, 1, size=(n // 4, dim)) for c in centers]
    ).astype(np.float32)
    Q = (X[rng.choice(len(X), nq, replace=False)] + rng.normal(0, 0.3, (nq, dim))).astype(
        np.float32
    )
    return X, Q


def _results_digest(index, Q, k, ef):
    """sha256 over every query's (distances, ids) byte representation."""
    h = hashlib.sha256()
    for q in Q:
        d, i = index.knn_search(q, k, ef=ef)
        h.update(d.tobytes())
        h.update(i.tobytes())
    return h.hexdigest()


class TestFlatMatchesReference:
    """Flat backend == dict-of-lists reference, results and eval counts."""

    @pytest.mark.parametrize("metric", ["l2", "sqeuclidean", "ip", "cosine"])
    @pytest.mark.parametrize("flat_graph", [False, True])
    def test_bit_identical_to_reference(self, metric, flat_graph):
        X, Q = _make_data()
        params = HnswParams(M=6, ef_construction=40, seed=3, flat=flat_graph)
        ref = ReferenceHnswIndex(dim=X.shape[1], params=params, metric=metric)
        idx = HnswIndex(dim=X.shape[1], params=params, metric=metric)
        ref.add_items(X)
        idx.add_items(X)

        assert idx.n_dist_evals == ref.n_dist_evals, "construction charge drifted"
        for q in Q:
            rd, ri = ref.knn_search(q, 5, ef=24)
            fd, fi = idx.knn_search(q, 5, ef=24)
            np.testing.assert_array_equal(fi, ri)
            np.testing.assert_array_equal(fd, rd)  # exact, not allclose
        assert idx.n_dist_evals == ref.n_dist_evals, "search charge drifted"

    def test_batch_rows_equal_single_queries(self):
        X, Q = _make_data()
        idx = HnswIndex(dim=X.shape[1], params=HnswParams(M=6, ef_construction=40, seed=3))
        idx.add_items(X)

        evals0 = idx.n_dist_evals
        D, I = idx.knn_search_batch(Q, 5, ef=24)
        batch_evals = idx.n_dist_evals - evals0

        single_evals = 0
        for row, q in enumerate(Q):
            before = idx.n_dist_evals
            d, i = idx.knn_search(q, 5, ef=24)
            single_evals += idx.n_dist_evals - before
            np.testing.assert_array_equal(D[row, : len(d)], d)
            np.testing.assert_array_equal(I[row, : len(i)], i)
        assert batch_evals == single_evals


class TestNativeMatchesPython:
    """The compiled search layer is a drop-in for the python traversal."""

    def test_search_identical_with_native_disabled(self):
        X, Q = _make_data(dim=32)  # 32 is the only natively-accelerated dim
        idx = HnswIndex(dim=32, params=HnswParams(M=6, ef_construction=40, seed=3))
        idx.add_items(X)
        if idx._native is None:
            pytest.skip("native search layer unavailable on this machine")

        def sweep():
            out, charges = [], []
            for q in Q:
                before = idx.n_dist_evals
                out.append(idx.knn_search(q, 5, ef=24))
                charges.append(idx.n_dist_evals - before)
            return out, charges

        native, native_charges = sweep()
        idx._native = None
        python, python_charges = sweep()

        for (nd, ni), (pd, pi) in zip(native, python):
            np.testing.assert_array_equal(ni, pi)
            np.testing.assert_array_equal(nd, pd)
        # the logical eval charge per query is path-independent
        assert native_charges == python_charges

    def test_build_identical_with_native_disabled(self):
        X, Q = _make_data(dim=32)
        params = HnswParams(M=6, ef_construction=40, seed=3)
        fast = HnswIndex(dim=32, params=params)
        slow = HnswIndex(dim=32, params=params)
        if fast._native is None:
            pytest.skip("native search layer unavailable on this machine")
        slow._native = None
        fast.add_items(X)
        slow.add_items(X)

        assert fast.n_dist_evals == slow.n_dist_evals
        for lv in range(len(fast._nbrs)):
            np.testing.assert_array_equal(fast._cnts[lv], slow._cnts[lv])
            for node in range(fast._n):
                c = fast._cnts[lv][node]
                np.testing.assert_array_equal(
                    fast._nbrs[lv][node, :c], slow._nbrs[lv][node, :c]
                )


class TestGoldenBuild:
    """Frozen eval counts + result digests for one seeded 2000-point build.

    These values were produced by the reference implementation and are
    identical on the python and native paths; any change means a behaviour
    change somewhere in the hot path, not a perf regression.
    """

    GOLDEN = {
        # (metric, flat): (build_evals, total_evals_after_search, digest16)
        ("l2", False): (8520441, 8544459, "c42d0a87321b0bd7"),
        ("l2", True): (8058264, 8081304, "c42d0a87321b0bd7"),
        ("ip", False): (8563013, 8588087, "3910920a5fc1a41e"),
        ("ip", True): (8102110, 8126424, "3ea648f7b907848c"),
    }

    @pytest.mark.parametrize("metric,flat_graph", sorted(GOLDEN))
    def test_golden(self, metric, flat_graph):
        rng = np.random.default_rng(42)
        X = rng.normal(size=(2000, 32)).astype(np.float32)
        Q = rng.normal(size=(50, 32)).astype(np.float32)
        idx = HnswIndex(
            dim=32,
            params=HnswParams(M=8, ef_construction=50, seed=5, flat=flat_graph),
            metric=metric,
        )
        idx.add_items(X)
        build_evals, total_evals, digest16 = self.GOLDEN[(metric, flat_graph)]
        assert idx.n_dist_evals == build_evals
        assert _results_digest(idx, Q, 10, ef=40)[:16] == digest16
        assert idx.n_dist_evals == total_evals


class TestSaveLoadRoundTrip:
    """save -> load preserves params and exact search behaviour."""

    @pytest.mark.parametrize(
        "params",
        [
            HnswParams(M=6, ef_construction=40, seed=3),
            HnswParams(M=6, ef_construction=40, seed=3, M0=9, keep_pruned=False),
            HnswParams(M=6, ef_construction=40, seed=3, extend_candidates=True),
            HnswParams(M=6, ef_construction=40, seed=3, flat=True),
        ],
        ids=["default", "M0-no-keep-pruned", "extend-candidates", "flat-graph"],
    )
    def test_round_trip(self, params, tmp_path):
        X, Q = _make_data()
        idx = HnswIndex(dim=X.shape[1], params=params)
        idx.add_items(X)
        path = str(tmp_path / "index.npz")
        idx.save(path)
        loaded = HnswIndex.load(path)

        assert loaded.params == params
        for q in Q:
            d0, i0 = idx.knn_search(q, 5, ef=24)
            d1, i1 = loaded.knn_search(q, 5, ef=24)
            np.testing.assert_array_equal(i1, i0)
            np.testing.assert_array_equal(d1, d0)
