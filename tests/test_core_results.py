"""Unit tests for GlobalResults: the one combiner both result paths share."""

import numpy as np
import pytest

from repro.core.results import GlobalResults
from repro.utils.heaps import merge_knn


class TestGlobalResults:
    def test_single_update(self):
        g = GlobalResults(2, 3)
        g.update(0, np.array([1.0, 2.0]), np.array([10, 20]))
        D, I = g.result_arrays()
        assert list(I[0]) == [10, 20, -1]
        assert D[0, 2] == np.inf
        assert list(I[1]) == [-1, -1, -1]

    def test_merge_keeps_global_topk(self):
        g = GlobalResults(1, 2)
        g.update(0, np.array([5.0, 6.0]), np.array([50, 60]))
        g.update(0, np.array([1.0, 7.0]), np.array([10, 70]))
        D, I = g.result_arrays()
        assert list(I[0]) == [10, 50]

    def test_duplicate_ids_across_replicas_collapse(self):
        """Replicated partitions answer the same query with the same ids;
        the merge must not double-count them."""
        g = GlobalResults(1, 3)
        g.update(0, np.array([1.0, 2.0]), np.array([7, 8]))
        g.update(0, np.array([1.0, 2.0]), np.array([7, 8]))
        D, I = g.result_arrays()
        assert list(I[0]) == [7, 8, -1]

    def test_combine_order_independent(self):
        rng = np.random.default_rng(0)
        updates = [
            (rng.random(4), rng.integers(0, 100, 4).astype(np.int64)) for _ in range(5)
        ]
        a = GlobalResults(1, 4)
        for d, i in updates:
            a.update(0, d, i)
        b = GlobalResults(1, 4)
        for d, i in reversed(updates):
            b.update(0, d, i)
        assert np.array_equal(a.result_arrays()[1], b.result_arrays()[1])

    def test_combine_equals_merge_knn(self):
        """The RMA combiner and the master-side merge must agree."""
        rng = np.random.default_rng(1)
        parts = [
            (np.sort(rng.random(5)), rng.integers(0, 30, 5).astype(np.int64))
            for _ in range(3)
        ]
        g = GlobalResults(1, 5)
        for d, i in parts:
            g[0] = g.combine(g[0], (d, i))
        ref_d, ref_i = merge_knn(parts, 5)
        d, i = g[0]
        assert np.array_equal(i, ref_i)
        assert np.allclose(d, ref_d)

    def test_update_count_tracks(self):
        g = GlobalResults(1, 2)
        g.update(0, np.array([1.0]), np.array([1]))
        g.update(0, np.array([2.0]), np.array([2]))
        assert g.update_count == 2

    def test_bad_args(self):
        with pytest.raises(ValueError):
            GlobalResults(0, 3)
        with pytest.raises(ValueError):
            GlobalResults(3, 0)
        g = GlobalResults(2, 2)
        with pytest.raises(IndexError):
            g.update(5, np.array([1.0]), np.array([1]))
