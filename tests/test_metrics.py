"""Unit tests for the distance-metric package."""

import numpy as np
import pytest

from repro.metrics import (
    CosineDistance,
    EuclideanMetric,
    available_metrics,
    get_metric,
)
from repro.metrics.base import Metric, register_metric


RNG = np.random.default_rng(5)
A = RNG.normal(size=(20, 16)).astype(np.float32)
B = RNG.normal(size=(12, 16)).astype(np.float32)


class TestRegistry:
    def test_available_contains_all_builtins(self):
        for name in ("l2", "sqeuclidean", "l1", "linf", "cosine", "ip"):
            assert name in available_metrics()

    def test_get_by_name_and_passthrough(self):
        m = get_metric("l2")
        assert isinstance(m, EuclideanMetric)
        assert get_metric(m) is m

    def test_unknown_name_raises_with_choices(self):
        with pytest.raises(KeyError, match="available"):
            get_metric("no-such-metric")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_metric
            class Dup(EuclideanMetric):
                name = "l2"

    def test_unnamed_registration_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):

            @register_metric
            class NoName(Metric):
                def pair(self, a, b):  # pragma: no cover
                    return 0.0

                def one_to_many(self, q, X):  # pragma: no cover
                    return np.zeros(len(X))


@pytest.mark.parametrize("name", ["l2", "sqeuclidean", "l1", "linf", "cosine", "ip"])
class TestConsistency:
    """pair / one_to_many / pairwise must agree for every metric."""

    def test_one_to_many_matches_pair(self, name):
        m = get_metric(name)
        d = m.one_to_many(A[0], B)
        expected = [m.pair(A[0], B[j]) for j in range(len(B))]
        assert np.allclose(d, expected, atol=1e-5)

    def test_pairwise_matches_one_to_many(self, name):
        m = get_metric(name)
        M = m.pairwise(A, B)
        assert M.shape == (len(A), len(B))
        for i in range(0, len(A), 5):
            assert np.allclose(M[i], m.one_to_many(A[i], B), atol=1e-5)

    def test_self_distance_is_minimal(self, name):
        m = get_metric(name)
        d_self = m.pair(A[0], A[0])
        d_other = m.pair(A[0], A[1])
        assert d_self <= d_other + 1e-9


class TestEuclidean:
    def test_known_value(self):
        m = get_metric("l2")
        assert m.pair(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == pytest.approx(5.0)

    def test_matches_numpy_norm(self):
        m = get_metric("l2")
        d = m.one_to_many(A[0], B)
        ref = np.linalg.norm(B.astype(np.float64) - A[0].astype(np.float64), axis=1)
        assert np.allclose(d, ref, atol=1e-6)

    def test_pairwise_no_negative_from_cancellation(self):
        X = np.full((4, 8), 1e3, dtype=np.float32)
        m = get_metric("l2")
        assert (m.pairwise(X, X) >= 0).all()

    def test_is_true_metric_flag(self):
        assert get_metric("l2").is_true_metric
        assert not get_metric("sqeuclidean").is_true_metric
        assert not get_metric("cosine").is_true_metric


class TestCosine:
    def test_orthogonal_is_one(self):
        m = CosineDistance()
        assert m.pair(np.array([1.0, 0.0]), np.array([0.0, 1.0])) == pytest.approx(1.0)

    def test_parallel_is_zero(self):
        m = CosineDistance()
        assert m.pair(np.array([2.0, 0.0]), np.array([5.0, 0.0])) == pytest.approx(0.0)

    def test_scale_invariance(self):
        m = CosineDistance()
        assert m.pair(A[0], A[1]) == pytest.approx(m.pair(A[0] * 3, A[1] * 0.5), abs=1e-6)


class TestManhattanChebyshev:
    def test_l1_known_value(self):
        m = get_metric("l1")
        assert m.pair(np.array([0.0, 0.0]), np.array([1.0, -2.0])) == pytest.approx(3.0)

    def test_linf_known_value(self):
        m = get_metric("linf")
        assert m.pair(np.array([0.0, 0.0]), np.array([1.0, -2.0])) == pytest.approx(2.0)

    def test_lp_ordering(self):
        """linf <= l2 <= l1 for any pair."""
        l1 = get_metric("l1").pair(A[0], A[1])
        l2 = get_metric("l2").pair(A[0], A[1])
        linf = get_metric("linf").pair(A[0], A[1])
        assert linf <= l2 + 1e-9 <= l1 + 1e-9
