"""Conformance tests for the unified :class:`repro.protocols.Searcher` surface.

Every in-memory backend — production HNSW, the reference HNSW oracle, and
the KD-tree / VP-tree / LSH / IVF-PQ baselines — must satisfy the same
structural protocol: ``knn_search(q, k)`` and a padded ``knn_search_batch``
whose rows agree with the single-query call.
"""

import numpy as np
import pytest

from repro.datasets import sample_queries, sift_like
from repro.hnsw import HnswIndex, HnswParams
from repro.hnsw.reference import ReferenceHnswIndex
from repro.kdtree import KDTree
from repro.lsh import LSHIndex
from repro.pq import IVFPQIndex
from repro.protocols import Searcher, batch_from_single
from repro.vptree import VPTree

DIM = 24


def _build_hnsw(X):
    idx = HnswIndex(dim=DIM, params=HnswParams(M=8, ef_construction=40, seed=11))
    idx.add_items(X)
    return idx


def _build_reference(X):
    idx = ReferenceHnswIndex(dim=DIM, params=HnswParams(M=8, ef_construction=40, seed=11))
    idx.add_items(X)
    return idx


BACKENDS = {
    "hnsw": _build_hnsw,
    "reference_hnsw": _build_reference,
    "kdtree": lambda X: KDTree(X, leaf_size=16),
    "vptree": lambda X: VPTree(X, leaf_size=16, seed=11),
    "lsh": lambda X: LSHIndex(n_tables=12, n_bits=8, seed=11).fit(X),
    "ivfpq": lambda X: IVFPQIndex(
        n_cells=8, n_subspaces=4, n_centroids=32, seed=11, n_probe=8
    ).fit(X),
}


@pytest.fixture(scope="module")
def data():
    X = sift_like(400, dim=DIM, seed=21)
    Q = sample_queries(X, 8, noise_scale=0.05, seed=22)
    return X, Q


@pytest.fixture(scope="module", params=sorted(BACKENDS), ids=sorted(BACKENDS))
def backend(request, data):
    X, _ = data
    return BACKENDS[request.param](X)


class TestSearcherConformance:
    def test_isinstance_of_protocol(self, backend):
        assert isinstance(backend, Searcher)

    def test_single_query_shape(self, backend, data):
        _, Q = data
        d, ids = backend.knn_search(Q[0], 5)
        assert len(d) == len(ids) <= 5
        assert np.all(np.diff(d) >= 0)  # closest first

    def test_batch_shape_and_padding(self, backend, data):
        _, Q = data
        D, ids = backend.knn_search_batch(Q, 5)
        assert D.shape == ids.shape == (len(Q), 5)
        # padding (if any) is inf/-1 and trails the real results
        for row in range(len(Q)):
            pad = ids[row] == -1
            assert np.all(np.isinf(D[row][pad]))
            if pad.any():
                first = int(np.argmax(pad))
                assert pad[first:].all()

    def test_batch_rows_agree_with_single(self, backend, data):
        _, Q = data
        D, ids = backend.knn_search_batch(Q, 5)
        for row in range(len(Q)):
            d1, i1 = backend.knn_search(Q[row], 5)
            np.testing.assert_array_equal(ids[row, : len(i1)], i1)
            np.testing.assert_allclose(D[row, : len(d1)], d1)


class TestFilteredConformance:
    """The keyword-only ``filter=`` half of the protocol, every backend."""

    def test_filter_none_identical_single(self, backend, data):
        _, Q = data
        for q in Q:
            d0, i0 = backend.knn_search(q, 5)
            d1, i1 = backend.knn_search(q, 5, filter=None)
            np.testing.assert_array_equal(i0, i1)
            np.testing.assert_array_equal(d0, d1)

    def test_filter_none_identical_batch(self, backend, data):
        _, Q = data
        D0, I0 = backend.knn_search_batch(Q, 5)
        D1, I1 = backend.knn_search_batch(Q, 5, filter=None)
        np.testing.assert_array_equal(I0, I1)
        np.testing.assert_array_equal(D0, D1)

    def test_filter_restricts_results(self, backend, data):
        X, Q = data
        mask = np.arange(len(X)) % 3 == 0
        d, ids = backend.knn_search(Q[0], 5, filter=mask)
        if not isinstance(backend, LSHIndex):
            # LSH may find no predicate-matching bucket collisions; every
            # other backend covers the matching rows
            assert len(ids) > 0
        assert np.all(ids % 3 == 0)
        assert np.all(np.diff(d) >= 0)

    def test_filter_restricts_batch(self, backend, data):
        X, Q = data
        mask = np.arange(len(X)) % 3 == 0
        _, I = backend.knn_search_batch(Q, 5, filter=mask)
        real = I[I >= 0]
        if not isinstance(backend, LSHIndex):
            assert real.size > 0
        assert np.all(real % 3 == 0)

    def test_all_false_filter_is_empty(self, backend, data):
        X, Q = data
        mask = np.zeros(len(X), dtype=bool)
        d, ids = backend.knn_search(Q[0], 5, filter=mask)
        assert len(d) == len(ids) == 0
        D, I = backend.knn_search_batch(Q[:2], 5, filter=mask)
        assert np.all(I == -1) and np.all(np.isinf(D))

    def test_singleton_filter_exact(self, backend, data):
        X, Q = data
        mask = np.zeros(len(X), dtype=bool)
        mask[137] = True
        _, ids = backend.knn_search(Q[0], 3, filter=mask)
        # graph/hash backends may miss an unreachable row, but whatever
        # they return must satisfy the predicate
        assert np.all(ids == 137)

    def test_bad_mask_dtype_rejected(self, backend, data):
        X, Q = data
        with pytest.raises(TypeError):
            backend.knn_search(Q[0], 5, filter=np.zeros(len(X), dtype=np.int64))

    def test_bad_mask_shape_rejected(self, backend, data):
        X, Q = data
        with pytest.raises(ValueError):
            backend.knn_search(Q[0], 5, filter=np.zeros(len(X) + 1, dtype=bool))


class TestDtypeContract:
    """Distances float64, ids int64 — single, batch, padding, filtered."""

    def test_single_query_dtypes(self, backend, data):
        _, Q = data
        d, ids = backend.knn_search(Q[0], 5)
        assert d.dtype == np.float64
        assert ids.dtype == np.int64

    def test_batch_dtypes(self, backend, data):
        _, Q = data
        D, I = backend.knn_search_batch(Q, 5)
        assert D.dtype == np.float64
        assert I.dtype == np.int64

    def test_filtered_dtypes(self, backend, data):
        X, Q = data
        mask = np.arange(len(X)) % 3 == 0
        d, ids = backend.knn_search(Q[0], 5, filter=mask)
        assert d.dtype == np.float64
        assert ids.dtype == np.int64
        D, I = backend.knn_search_batch(Q[:3], 5, filter=mask)
        assert D.dtype == np.float64
        assert I.dtype == np.int64

    def test_padding_dtypes_when_short(self, backend, data):
        # a filter tighter than k forces padding on the batch surface
        X, Q = data
        mask = np.zeros(len(X), dtype=bool)
        mask[::100] = True  # 4 allowed rows, k=8
        D, I = backend.knn_search_batch(Q[:2], 8, filter=mask)
        assert D.shape == I.shape == (2, 8)
        assert D.dtype == np.float64
        assert I.dtype == np.int64
        assert np.all(np.isinf(D[I == -1]))


class TestBatchFromSingle:
    def test_pads_short_results(self):
        def fake(q, k):
            return np.array([1.0]), np.array([42], dtype=np.int64)

        D, ids = batch_from_single(fake, np.zeros((3, 2)), 4)
        assert D.shape == ids.shape == (3, 4)
        np.testing.assert_array_equal(ids[:, 0], 42)
        assert np.all(ids[:, 1:] == -1)
        assert np.all(np.isinf(D[:, 1:]))

    def test_empty_query_matrix(self):
        D, ids = batch_from_single(lambda q, k: (np.empty(0), np.empty(0)), np.zeros((0, 2)), 3)
        assert D.shape == ids.shape == (0, 3)

    def test_non_searcher_rejected(self):
        assert not isinstance(object(), Searcher)
