"""Unit tests for the local-searcher strategies."""

import numpy as np
import pytest

from repro.core.partition import NodeStore, Partition
from repro.core.searcher import ModeledSearcher, RealHnswSearcher
from repro.hnsw import HnswIndex, HnswParams
from repro.simmpi import CostModel


@pytest.fixture(scope="module")
def partition():
    rng = np.random.default_rng(4)
    X = rng.normal(size=(300, 16)).astype(np.float32)
    ids = np.arange(1000, 1300)
    idx = HnswIndex(dim=16, params=HnswParams(M=6, ef_construction=30, seed=4))
    idx.add_items(X, ids=ids)
    return Partition(0, X, ids, index=idx)


class TestRealHnswSearcher:
    def test_returns_global_ids(self, partition):
        s = RealHnswSearcher(CostModel(), ef_search=40)
        d, ids, secs = s.search(partition, partition.points[5], 3)
        assert ids[0] == 1005
        assert secs > 0

    def test_seconds_proportional_to_evals(self, partition):
        cheap = RealHnswSearcher(CostModel(), ef_search=5)
        pricey = RealHnswSearcher(CostModel(), ef_search=200)
        q = partition.points[0]
        _, _, s1 = cheap.search(partition, q, 3)
        _, _, s2 = pricey.search(partition, q, 3)
        assert s2 > s1

    def test_missing_index_raises(self):
        p = Partition(1, np.zeros((4, 2), np.float32), np.arange(4))
        s = RealHnswSearcher(CostModel(), ef_search=10)
        with pytest.raises(ValueError, match="no HNSW index"):
            s.search(p, np.zeros(2, np.float32), 1)

    def test_build_seconds_positive(self, partition):
        s = RealHnswSearcher(CostModel(), ef_search=10)
        assert s.build_seconds(partition) > 0


class TestModeledSearcher:
    def _searcher(self, **kw):
        defaults = dict(
            cost=CostModel(), ef_search=50, m=16, dim=128, virtual_points=10**6
        )
        defaults.update(kw)
        return ModeledSearcher(**defaults)

    def test_charges_virtual_scale_cost(self):
        s_small = self._searcher(virtual_points=10**4)
        s_big = self._searcher(virtual_points=10**9)
        pts = np.random.default_rng(0).normal(size=(8, 128)).astype(np.float32)
        p = Partition(0, pts, np.arange(8), sample=(pts, np.arange(8)))
        _, _, sec_small = s_small.search(p, pts[0], 3)
        _, _, sec_big = s_big.search(p, pts[0], 3)
        assert sec_big > sec_small

    def test_explicit_search_seconds_override(self):
        s = self._searcher(search_seconds=0.5)
        pts = np.random.default_rng(0).normal(size=(4, 128)).astype(np.float32)
        p = Partition(0, pts, np.arange(4), sample=(pts, np.arange(4)))
        _, _, sec = s.search(p, pts[0], 2)
        assert sec == 0.5

    def test_answers_from_sample(self):
        rng = np.random.default_rng(1)
        pts = rng.normal(size=(32, 128)).astype(np.float32)
        ids = np.arange(500, 532)
        p = Partition(0, pts, ids, sample=(pts, ids))
        s = self._searcher()
        d, res_ids, _ = s.search(p, pts[7], 3)
        assert res_ids[0] == 507
        assert np.all(np.diff(d) >= -1e-12)

    def test_no_sample_returns_empty(self):
        p = Partition(0, np.zeros((2, 128), np.float32), np.arange(2))
        d, ids, sec = self._searcher().search(p, np.zeros(128, np.float32), 3)
        assert len(d) == 0 and len(ids) == 0 and sec > 0

    def test_build_seconds_scales_with_virtual_points(self):
        p = Partition(0, np.zeros((2, 128), np.float32), np.arange(2))
        assert self._searcher(virtual_points=10**8).build_seconds(p) > self._searcher(
            virtual_points=10**5
        ).build_seconds(p)


class TestNodeStore:
    def test_add_get_contains(self, partition):
        ns = NodeStore(0)
        ns.add(partition)
        assert partition.partition_id in ns
        assert ns.get(0) is partition

    def test_missing_partition_message_lists_resident(self, partition):
        ns = NodeStore(3)
        ns.add(partition)
        with pytest.raises(KeyError, match="resident"):
            ns.get(42)

    def test_total_bytes(self, partition):
        ns = NodeStore(0)
        ns.add(partition)
        assert ns.total_bytes() == partition.nbytes > 0
