"""Open-loop serving (``repro.serving``): arrivals, admission, cache, SLO.

The serving contract (docs/serving.md): arrivals reorder *when* queries
are served, never what they answer — every serving run returns (D, I)
bit-identical to the same batch run closed-loop, and a cache hit replays
bit-identical rows.  Drops are never silent: every offered query lands in
exactly one admission ledger column (``admitted + shed + rejected ==
offered``).  These tests pin that contract, the unit behaviour of each
serving component, the config guard rails, and serving's composition with
flow control and the fault harness.
"""

import hashlib

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import zipf_query_targets
from repro.faults import FaultSpec, RankCrash
from repro.hnsw import HnswParams
from repro.serving import AdmissionQueue, ResultCache, ServingTimeline
from repro.serving.arrivals import arrival_schedule, parse_arrival_spec
from repro.simmpi.errors import SimConfigError

HNSW = HnswParams(M=8, ef_construction=40)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(600, 16)).astype(np.float32)
    Q = rng.normal(size=(24, 16)).astype(np.float32)
    return X, Q


@pytest.fixture(scope="module")
def hot_corpus():
    """A batch with byte-identical repeats: 60 draws over a 12-query pool."""
    rng = np.random.default_rng(4)
    X = rng.normal(size=(600, 16)).astype(np.float32)
    pool = rng.normal(size=(12, 16)).astype(np.float32)
    ranks = zipf_query_targets(60, len(pool), skew=1.3, seed=4)
    return X, np.ascontiguousarray(pool[ranks])


def _run(corpus, **kw):
    X, Q = corpus
    cfg = SystemConfig(
        n_cores=8, cores_per_node=4, k=5, hnsw=HNSW, n_probe=3, seed=0, **kw
    )
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann.query(Q)


def _digest(D, I):
    return hashlib.sha256(D.tobytes() + I.tobytes()).hexdigest()[:16]


class TestArrivalSpecs:
    def test_parse_poisson(self):
        assert parse_arrival_spec("poisson:250.5") == ("poisson", 250.5)

    def test_parse_burst(self):
        assert parse_arrival_spec("burst:10:100:0.5") == ("burst", 10.0, 100.0, 0.5)

    def test_parse_trace(self):
        kind, times = parse_arrival_spec("trace:0.0,0.1,0.25")
        assert kind == "trace"
        np.testing.assert_array_equal(times, [0.0, 0.1, 0.25])

    @pytest.mark.parametrize(
        "bad",
        [
            "poisson",  # no colon
            "uniform:10",  # unknown kind
            "poisson:fast",  # non-numeric rate
            "poisson:0",  # rate must be positive
            "poisson:-5",
            "burst:10:100",  # missing period
            "burst:100:10:1",  # HIGH < LOW
            "burst:0:10:1",
            "trace:",  # empty
            "trace:0.2,0.1",  # decreasing
            "trace:-1,0",  # negative
            "trace:a,b",
        ],
    )
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ValueError):
            parse_arrival_spec(bad)

    @pytest.mark.parametrize(
        "spec", ["poisson:500", "burst:100:2000:0.01", "trace:" + ",".join(
            str(i * 0.001) for i in range(40))]
    )
    def test_schedule_deterministic_and_monotone(self, spec):
        a = arrival_schedule(spec, 40, seed=11)
        b = arrival_schedule(spec, 40, seed=11)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (40,)
        assert np.all(np.diff(a) >= 0) and np.all(a >= 0)

    def test_different_seeds_differ(self):
        a = arrival_schedule("poisson:500", 40, seed=11)
        c = arrival_schedule("poisson:500", 40, seed=12)
        assert not np.array_equal(a, c)

    def test_trace_is_seed_independent_replay(self):
        spec = "trace:0.0,0.5,0.5,1.25"
        np.testing.assert_array_equal(
            arrival_schedule(spec, 4, seed=1), [0.0, 0.5, 0.5, 1.25]
        )
        np.testing.assert_array_equal(
            arrival_schedule(spec, 4, seed=99), [0.0, 0.5, 0.5, 1.25]
        )

    def test_short_trace_rejected(self):
        with pytest.raises(ValueError, match="cover every query"):
            arrival_schedule("trace:0.1,0.2", 3)

    def test_burst_alternates_rate(self):
        # over the high half-period arrivals come ~20x faster than the low
        times = arrival_schedule("burst:50:1000:2.0", 400, seed=0)
        in_high = (times % 2.0) < 1.0
        assert np.mean(in_high) > 0.8  # most arrivals land in the fast phase


class TestAdmissionQueue:
    def test_unbounded_never_overloads(self):
        q = AdmissionQueue(0, "block")
        for i in range(1000):
            assert q.accepting()
            assert q.offer(i) == ("queued", None)
        assert q.max_depth_seen == 1000 and q.shed == q.rejected == 0

    def test_block_stops_accepting_when_full(self):
        q = AdmissionQueue(2, "block")
        q.offer(0), q.offer(1)
        assert not q.accepting()
        with pytest.raises(RuntimeError, match="accepting"):
            q.offer(2)
        q.begin_service()
        assert q.accepting()

    def test_shed_oldest_evicts_head(self):
        q = AdmissionQueue(2, "shed_oldest")
        q.offer(0), q.offer(1)
        assert q.accepting()  # shedding policies always look at arrivals
        assert q.offer(2) == ("shed", 0)
        assert list(q.queue) == [1, 2]
        assert q.shed == 1

    def test_reject_refuses_newcomer(self):
        q = AdmissionQueue(2, "reject")
        q.offer(0), q.offer(1)
        assert q.offer(2) == ("rejected", 2)
        assert list(q.queue) == [0, 1]
        assert q.rejected == 1

    def test_ledger_balances(self):
        q = AdmissionQueue(3, "shed_oldest")
        offered = 10
        for i in range(offered):
            q.offer(i)
        while q.queue:
            q.begin_service()
        assert q.admitted + q.shed + q.rejected == offered

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            AdmissionQueue(-1, "block")
        with pytest.raises(ValueError):
            AdmissionQueue(4, "drop_newest")


class TestResultCache:
    def _row(self, i):
        return (np.full(5, float(i)), np.arange(5) + i)

    def test_exact_hit_and_miss(self):
        c = ResultCache(4)
        q = np.ones(8, dtype=np.float32)
        assert c.get(c.key(q)) is None
        c.put(c.key(q), self._row(1))
        D, ids = c.get(c.key(q))
        np.testing.assert_array_equal(ids, self._row(1)[1])
        # a single changed byte is a different exact key
        q2 = q.copy()
        q2[0] += 1e-6
        assert c.get(c.key(q2)) is None
        assert c.hits == 1 and c.misses == 2

    def test_lru_eviction(self):
        c = ResultCache(2)
        keys = [c.key(np.full(4, i, dtype=np.float32)) for i in range(3)]
        c.put(keys[0], self._row(0))
        c.put(keys[1], self._row(1))
        c.get(keys[0])  # refresh 0: 1 becomes LRU
        c.put(keys[2], self._row(2))
        assert c.get(keys[1]) is None  # evicted
        assert c.get(keys[0]) is not None
        assert c.evictions == 1 and len(c) == 2

    def test_invalidate_marks_stale(self):
        c = ResultCache(4)
        k = c.key(np.zeros(4, dtype=np.float32))
        c.put(k, self._row(7))
        c.invalidate()
        assert c.get(k) is None
        assert c.stale == 1 and c.hits == 0 and len(c) == 0

    def test_near_mode_groups_neighbors(self):
        c = ResultCache(4, mode="near", dim=16, seed=0)
        rng = np.random.default_rng(0)
        q = rng.normal(size=16).astype(np.float32)
        c.put(c.key(q), self._row(3))
        # a tiny perturbation stays in the same quantizer cell
        assert c.get(c.key(q + 1e-7)) is not None
        # the antipode never does (every sign bit flips)
        assert c.get(c.key(-q)) is None

    def test_near_mode_needs_dim(self):
        with pytest.raises(ValueError, match="dim"):
            ResultCache(4, mode="near")

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            ResultCache(0)
        with pytest.raises(ValueError):
            ResultCache(4, mode="fuzzy")


class TestServingTimeline:
    def test_latency_decomposition(self):
        t = ServingTimeline(3)
        t.arrival[:] = [0.0, 1.0, 2.0]
        t.note_dispatch(0, 0.5)
        t.note_complete(0, 2.0)
        lat = t.latencies()
        assert lat[0] == 2.0
        assert np.isnan(lat[1]) and np.isnan(lat[2])


class TestServingEquivalence:
    """Serving returns bit-identical answers to the closed-loop batch."""

    MODES = {
        "two_sided": dict(one_sided=False),
        "one_sided_windowed": dict(one_sided=True, dispatch_window=4),
        "two_sided_windowed": dict(one_sided=False, dispatch_window=2),
    }

    @pytest.mark.parametrize("mode", list(MODES))
    @pytest.mark.parametrize("spec", ["poisson:5000", "burst:1000:50000:0.002"])
    def test_matches_closed_loop(self, corpus, mode, spec):
        kw = self.MODES[mode]
        D0, I0, rep0 = _run(corpus, **kw)
        D1, I1, rep1 = _run(corpus, **kw, arrival=spec)
        np.testing.assert_array_equal(D0, D1)
        np.testing.assert_array_equal(I0, I1)
        assert rep1.offered_queries == rep1.admitted_queries == len(I1)
        assert rep1.shed_queries == rep1.rejected_queries == 0

    def test_closed_loop_reports_no_serving_activity(self, corpus):
        _, _, rep = _run(corpus, one_sided=False)
        assert rep.offered_queries == 0 and rep.arrival_times is None

    def test_serving_records_full_timeline(self, corpus):
        _, _, rep = _run(corpus, one_sided=False, arrival="poisson:5000")
        lat = rep.query_latencies
        assert lat is not None and np.all(np.isfinite(lat)) and np.all(lat > 0)
        # arrival <= dispatch <= complete, per query
        assert np.all(rep.arrival_times <= rep.dispatch_times + 1e-15)
        assert np.all(rep.dispatch_times <= rep.complete_times + 1e-15)
        np.testing.assert_allclose(
            lat, rep.complete_times - rep.arrival_times, rtol=0, atol=1e-15
        )

    def test_one_sided_serving_latencies_via_credits(self, corpus):
        _, _, rep = _run(
            corpus, one_sided=True, dispatch_window=4, arrival="poisson:5000"
        )
        assert np.all(np.isfinite(rep.query_latencies))

    def test_serving_deterministic(self, corpus):
        a = _run(corpus, one_sided=False, arrival="poisson:5000")
        b = _run(corpus, one_sided=False, arrival="poisson:5000")
        assert _digest(a[0], a[1]) == _digest(b[0], b[1])
        assert a[2].total_seconds == b[2].total_seconds
        np.testing.assert_array_equal(a[2].query_latencies, b[2].query_latencies)


class TestResultCacheServing:
    def test_hits_are_bit_identical(self, hot_corpus):
        D0, I0, rep0 = _run(hot_corpus, one_sided=False, arrival="poisson:5000")
        D1, I1, rep1 = _run(
            hot_corpus, one_sided=False, arrival="poisson:5000", cache_size=32
        )
        assert rep0.cache_hits == 0
        assert rep1.cache_hits > 0  # the hot pool repeats must hit
        np.testing.assert_array_equal(D0, D1)
        np.testing.assert_array_equal(I0, I1)
        # every admitted query was either a hit or a miss
        assert rep1.cache_hits + rep1.cache_misses == rep1.admitted_queries
        # hits skip dispatch entirely, so the run can only get faster
        assert rep1.total_seconds <= rep0.total_seconds

    def test_cache_capacity_evicts(self, hot_corpus):
        _, _, rep = _run(
            hot_corpus, one_sided=False, arrival="poisson:5000", cache_size=2
        )
        assert rep.cache_evictions > 0
        assert rep.cache_hits + rep.cache_misses == rep.admitted_queries


class TestOverloadPolicies:
    """The admission ledger balances under genuine overload.

    ``dispatch_window=1`` makes the head of the ingress queue credit-block
    so the queue actually backs up (with eager dispatch the master routes
    faster than any arrival process can offer).
    """

    # all 24 queries arrive at t=0 while dispatch_window=1 credit-blocks
    # the queue head, so the ingress bound is genuinely exceeded
    PRESSURE = dict(
        one_sided=False,
        arrival="trace:" + ",".join(["0"] * 24),
        dispatch_window=1,
        queue_depth=3,
    )

    def test_block_admits_everything(self, corpus):
        _, _, rep = _run(corpus, **{**self.PRESSURE, "overload_policy": "block"})
        assert rep.admitted_queries == rep.offered_queries == 24
        assert rep.shed_queries == rep.rejected_queries == 0
        assert rep.max_ingress_depth <= 3

    @pytest.mark.parametrize("policy", ["shed_oldest", "reject"])
    def test_dropping_policies_account(self, corpus, policy):
        _, Q = corpus
        D, I, rep = _run(corpus, **{**self.PRESSURE, "overload_policy": policy})
        dropped = rep.shed_queries if policy == "shed_oldest" else rep.rejected_queries
        assert dropped > 0
        assert (
            rep.admitted_queries + rep.shed_queries + rep.rejected_queries
            == rep.offered_queries
            == len(Q)
        )
        assert rep.max_ingress_depth <= 3
        # dropped queries have NaN latencies, answered ones finite
        finite = np.isfinite(rep.query_latencies)
        assert finite.sum() == rep.admitted_queries

    def test_shed_answers_match_closed_loop_where_served(self, corpus):
        D0, I0, _ = _run(corpus, one_sided=False)
        D1, I1, rep = _run(
            corpus, **{**self.PRESSURE, "overload_policy": "shed_oldest"}
        )
        served = np.isfinite(rep.query_latencies)
        np.testing.assert_array_equal(D0[served], D1[served])
        np.testing.assert_array_equal(I0[served], I1[served])


class TestServingWithFaults:
    def test_crash_mid_serving_terminates_and_accounts(self, corpus):
        spec = FaultSpec(crashes=(RankCrash(node=1, at=0.001),))
        D, I, rep = _run(
            corpus,
            one_sided=False,
            replication_factor=2,
            arrival="poisson:2000",  # spreads arrivals across the crash time
            fault_spec=spec,
        )
        assert (
            rep.admitted_queries + rep.shed_queries + rep.rejected_queries
            == rep.offered_queries
            == 24
        )
        # every admitted query completed (possibly degraded), none hung
        assert np.isfinite(rep.query_latencies).sum() == rep.admitted_queries

    def test_crash_invalidates_cache(self, hot_corpus):
        spec = FaultSpec(crashes=(RankCrash(node=1, at=0.0005),))
        _, _, rep = _run(
            hot_corpus,
            one_sided=False,
            replication_factor=2,
            arrival="poisson:5000",
            cache_size=32,
            fault_spec=spec,
        )
        assert (
            rep.admitted_queries + rep.shed_queries + rep.rejected_queries
            == rep.offered_queries
        )


class TestSloAccounting:
    def test_impossible_slo_all_violations(self, corpus):
        _, _, rep = _run(
            corpus, one_sided=False, arrival="poisson:5000", slo_ms=1e-9
        )
        assert rep.slo_violation_fraction == 1.0

    def test_generous_slo_no_violations(self, corpus):
        _, _, rep = _run(
            corpus, one_sided=False, arrival="poisson:5000", slo_ms=1e6
        )
        assert rep.slo_violation_fraction == 0.0

    def test_drops_count_against_slo(self, corpus):
        _, _, rep = _run(
            corpus,
            one_sided=False,
            arrival="trace:" + ",".join(["0"] * 24),
            dispatch_window=1,
            queue_depth=3,
            overload_policy="shed_oldest",
            slo_ms=1e6,
        )
        assert rep.shed_queries > 0
        # generous target: only the drops violate
        assert rep.slo_violation_fraction == pytest.approx(
            rep.shed_queries / rep.offered_queries
        )

    def test_queue_service_decomposition(self, corpus):
        _, _, rep = _run(corpus, one_sided=False, arrival="poisson:5000")
        np.testing.assert_allclose(
            rep.queue_seconds + rep.service_seconds,
            rep.query_latencies,
            rtol=0,
            atol=1e-15,
        )
        assert np.all(rep.queue_seconds >= 0) and np.all(rep.service_seconds > 0)

    def test_closed_loop_violation_fraction_is_zero(self, corpus):
        _, _, rep = _run(corpus, one_sided=False)
        assert rep.slo_violation_fraction == 0.0


class TestServingConfigGuards:
    def _cfg(self, **kw):
        return SystemConfig(n_cores=8, cores_per_node=4, k=5, hnsw=HNSW, **kw)

    def test_one_sided_eager_serving_rejected(self):
        with pytest.raises(SimConfigError, match="one_sided=False.*dispatch_window > 0"):
            self._cfg(arrival="poisson:100", one_sided=True, dispatch_window=0)

    def test_guard_is_a_value_error(self):
        # callers that only know ValueError still catch config mistakes
        with pytest.raises(ValueError):
            self._cfg(arrival="poisson:100", one_sided=True)

    def test_bad_arrival_spec_rejected(self):
        with pytest.raises(SimConfigError, match="invalid arrival spec"):
            self._cfg(arrival="poisson:sometimes")

    @pytest.mark.parametrize(
        "kw",
        [
            dict(queue_depth=4),
            dict(overload_policy="reject", queue_depth=4),
            dict(cache_size=8),
            dict(slo_ms=5.0),
        ],
    )
    def test_serving_knobs_need_arrival(self, kw):
        with pytest.raises(SimConfigError, match="needs an open-loop arrival"):
            self._cfg(**kw)

    def test_dropping_policy_needs_bound(self):
        with pytest.raises(SimConfigError, match="queue_depth > 0"):
            self._cfg(arrival="poisson:100", one_sided=False, overload_policy="reject")

    def test_serving_requires_approx_routing(self):
        with pytest.raises(SimConfigError, match="routing='approx'"):
            self._cfg(arrival="poisson:100", one_sided=False, routing="adaptive")

    def test_serving_requires_master_strategy(self):
        with pytest.raises(SimConfigError, match="owner_strategy='master'"):
            self._cfg(
                arrival="poisson:100", one_sided=False, owner_strategy="multiple"
            )

    def test_serving_requires_unit_batches(self):
        with pytest.raises(SimConfigError, match="batch_size=1"):
            self._cfg(
                arrival="poisson:100",
                one_sided=False,
                batch_size=4,
                dispatch_window=4,
            )

    def test_bad_policy_and_mode_names(self):
        with pytest.raises(SimConfigError, match="overload_policy"):
            self._cfg(overload_policy="drop_newest", queue_depth=4)
        with pytest.raises(SimConfigError, match="cache_mode"):
            self._cfg(cache_mode="fuzzy")
