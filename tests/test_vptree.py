"""Unit tests for the serial VP-tree, selection heuristic, and router."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn
from repro.vptree import PartitionRouter, VPTree, select_vantage_point, spread_score
from repro.metrics import get_metric


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(3)
    centers = rng.normal(0, 20, size=(4, 12))
    X = np.concatenate([c + rng.normal(0, 1.5, size=(100, 12)) for c in centers]).astype(
        np.float32
    )
    Q = (X[rng.choice(len(X), 25, replace=False)] + rng.normal(0, 0.5, (25, 12))).astype(
        np.float32
    )
    gt_d, gt_i = brute_force_knn(X, Q, 7)
    return X, Q, gt_d, gt_i


class TestSelect:
    def test_spread_score_prefers_separating_point(self):
        """A corner point separates a two-cluster set better than the
        midpoint between the clusters."""
        m = get_metric("l2")
        left = np.zeros((50, 2)) + [0.0, 0.0]
        right = np.zeros((50, 2)) + [10.0, 0.0]
        sample = np.concatenate([left, right])
        corner = np.array([0.0, 0.0])
        midpoint = np.array([5.0, 0.0])
        assert spread_score(corner, sample, m) > spread_score(midpoint, sample, m)

    def test_select_returns_valid_index(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 8))
        idx, score = select_vantage_point(X, rng=rng)
        assert 0 <= idx < 200 and np.isfinite(score)

    def test_explicit_candidates_mode(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(100, 4))
        cands = rng.normal(size=(5, 4))
        idx, _ = select_vantage_point(X, candidates=cands, rng=rng)
        assert 0 <= idx < 5


class TestVPTree:
    def test_exact_search_matches_brute_force(self, data):
        X, Q, gt_d, gt_i = data
        tree = VPTree(X, leaf_size=16, seed=1)
        for qi in range(len(Q)):
            d, ids = tree.knn_search(Q[qi], 7)
            assert np.array_equal(ids, gt_i[qi])
            assert np.allclose(d, gt_d[qi], atol=1e-5)

    def test_leaves_partition_dataset(self, data):
        X, *_ = data
        tree = VPTree(X, leaf_size=16, seed=1)
        leaves = tree.leaves()
        assert all(len(l) <= 16 for l in leaves)
        allids = np.sort(np.concatenate(leaves))
        assert np.array_equal(allids, np.arange(len(X)))

    def test_pruning_beats_exhaustive_scan(self, data):
        """The point of the structure: fewer distance evals than brute force."""
        X, Q, *_ = data
        tree = VPTree(X, leaf_size=16, seed=1)
        before = tree.n_dist_evals
        for qi in range(len(Q)):
            tree.knn_search(Q[qi], 7)
        per_query = (tree.n_dist_evals - before) / len(Q)
        assert per_query < 0.8 * len(X)

    def test_non_metric_rejected(self, data):
        X, *_ = data
        with pytest.raises(ValueError, match="true metric"):
            VPTree(X, metric="sqeuclidean")

    def test_l1_metric_exact(self):
        rng = np.random.default_rng(5)
        X = rng.normal(size=(150, 6)).astype(np.float32)
        Q = X[:5]
        tree = VPTree(X, leaf_size=8, metric="l1", seed=2)
        gt_d, gt_i = brute_force_knn(X, Q, 4, metric="l1")
        for qi in range(5):
            _, ids = tree.knn_search(Q[qi], 4)
            assert np.array_equal(ids, gt_i[qi])

    def test_duplicate_points_terminate(self):
        X = np.ones((100, 4), dtype=np.float32)
        tree = VPTree(X, leaf_size=8, seed=0)
        d, ids = tree.knn_search(np.ones(4, dtype=np.float32), 3)
        assert len(ids) == 3 and np.allclose(d, 0)

    def test_leaf_size_one(self):
        rng = np.random.default_rng(6)
        X = rng.normal(size=(40, 4)).astype(np.float32)
        tree = VPTree(X, leaf_size=1, seed=0)
        _, ids = tree.knn_search(X[11], 1)
        assert ids[0] == 11


class TestRouter:
    def test_from_vptree_partition_count(self, data):
        X, *_ = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        assert router.n_partitions == len(tree.leaves())
        assert sorted(router.partitions()) == list(range(router.n_partitions))

    def test_route_exact_covers_true_neighbors(self, data):
        X, Q, gt_d, gt_i = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        leaves = tree.leaves()
        id2leaf = {int(i): li for li, l in enumerate(leaves) for i in l}
        for qi in range(len(Q)):
            parts = set(router.route_exact(Q[qi], float(gt_d[qi][-1]) * (1 + 1e-9)))
            need = {id2leaf[int(i)] for i in gt_i[qi]}
            assert need <= parts

    def test_route_exact_zero_tau_single_path(self, data):
        X, Q, *_ = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        parts = router.route_exact(Q[0], 0.0)
        assert len(parts) >= 1

    def test_route_approx_returns_n_probe(self, data):
        X, Q, *_ = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        for n in (1, 2, 4):
            parts = router.route_approx(Q[0], n)
            assert len(parts) == min(n, router.n_partitions)
            assert len(set(parts)) == len(parts)

    def test_route_approx_first_matches_descent(self, data):
        """n_probe=1 must return the leaf a plain tree descent reaches."""
        X, Q, *_ = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        q = Q[0]
        node = router.root
        m = get_metric("l2")
        while not node.is_leaf:
            d = m.pair(q, node.vp)
            node = node.left if d <= node.mu else node.right
        assert router.route_approx(q, 1)[0] == node.partition

    def test_route_approx_probes_increase_coverage(self, data):
        X, Q, gt_d, gt_i = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        leaves = tree.leaves()
        id2leaf = {int(i): li for li, l in enumerate(leaves) for i in l}

        def coverage(n_probe):
            cov = 0
            for qi in range(len(Q)):
                parts = set(router.route_approx(Q[qi], n_probe))
                need = {id2leaf[int(i)] for i in gt_i[qi]}
                cov += len(need & parts) / len(need)
            return cov

        assert coverage(4) >= coverage(1)

    def test_invalid_args(self, data):
        X, Q, *_ = data
        tree = VPTree(X, leaf_size=32, seed=1)
        router = PartitionRouter.from_vptree(tree)
        with pytest.raises(ValueError):
            router.route_exact(Q[0], -1.0)
        with pytest.raises(ValueError):
            router.route_approx(Q[0], 0)
