"""Property-based tests on the search structures.

The heavyweight invariants: exact tree searches must equal brute force on
arbitrary inputs, exact routing must cover every partition holding a true
neighbor, and the distributed median must equal the serial k-th statistic.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets import brute_force_knn
from repro.kdtree import KDTree
from repro.vptree import PartitionRouter, VPTree
from repro.vptree.median import weighted_median


@st.composite
def point_cloud(draw, max_n=120, dim_range=(2, 8)):
    n = draw(st.integers(20, max_n))
    dim = draw(st.integers(*dim_range))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    kind = draw(st.sampled_from(["normal", "clustered", "grid"]))
    if kind == "normal":
        X = rng.normal(size=(n, dim))
    elif kind == "clustered":
        centers = rng.normal(0, 10, size=(3, dim))
        X = centers[rng.integers(0, 3, n)] + rng.normal(0, 0.5, size=(n, dim))
    else:
        X = rng.integers(0, 4, size=(n, dim)).astype(float)  # many exact ties
    return X.astype(np.float32)


@settings(max_examples=25, deadline=None)
@given(X=point_cloud(), k=st.integers(1, 5), leaf=st.integers(1, 16))
def test_vptree_exact_equals_brute_force(X, k, leaf):
    tree = VPTree(X, leaf_size=leaf, seed=0)
    gt_d, gt_i = brute_force_knn(X, X[:5], k)
    for qi in range(5):
        d, ids = tree.knn_search(X[qi], k)
        assert np.allclose(np.sort(d), gt_d[qi], atol=1e-4)


@settings(max_examples=25, deadline=None)
@given(X=point_cloud(), k=st.integers(1, 5), leaf=st.integers(1, 16))
def test_kdtree_exact_equals_brute_force(X, k, leaf):
    tree = KDTree(X, leaf_size=leaf)
    gt_d, gt_i = brute_force_knn(X, X[:5], k)
    for qi in range(5):
        d, ids = tree.knn_search(X[qi], k)
        assert np.allclose(np.sort(d), gt_d[qi], atol=1e-4)


@settings(max_examples=20, deadline=None)
@given(X=point_cloud(max_n=100), k=st.integers(1, 4))
def test_exact_routing_covers_true_neighbor_partitions(X, k):
    tree = VPTree(X, leaf_size=16, seed=1)
    router = PartitionRouter.from_vptree(tree)
    leaves = tree.leaves()
    id2leaf = {int(i): li for li, l in enumerate(leaves) for i in l}
    gt_d, gt_i = brute_force_knn(X, X[:4], k)
    for qi in range(4):
        tau = float(gt_d[qi][-1]) * (1 + 1e-7) + 1e-7
        parts = set(router.route_exact(X[qi], tau))
        need = {id2leaf[int(i)] for i in gt_i[qi]}
        assert need <= parts


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(st.floats(-1e6, 1e6, allow_nan=False, width=32), min_size=1, max_size=200),
    weights=st.data(),
)
def test_weighted_median_within_range(values, weights):
    v = np.array(values)
    w = np.array(
        weights.draw(
            st.lists(st.floats(0.1, 100), min_size=len(values), max_size=len(values))
        )
    )
    med = weighted_median(v, w)
    assert v.min() <= med <= v.max()
    # at least half the weight is <= med
    assert w[v <= med].sum() >= w.sum() / 2 - 1e-6
