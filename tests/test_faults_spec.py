"""Unit tests for FaultSpec / FaultPolicy validation and serialisation."""

import pytest

from repro.faults import FaultPolicy, FaultSpec, LinkFault, RankCrash, SlowNode
from repro.simmpi.errors import SimConfigError


class TestRankCrash:
    def test_valid(self):
        c = RankCrash(node=2, at=1.5)
        assert c.node == 2 and c.at == 1.5

    def test_negative_node_rejected(self):
        with pytest.raises(SimConfigError):
            RankCrash(node=-1, at=0.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimConfigError):
            RankCrash(node=0, at=-0.1)


class TestLinkFault:
    def test_defaults_are_clean_link(self):
        ln = LinkFault()
        assert ln.drop_prob == 0.0 and ln.latency_factor == 1.0

    @pytest.mark.parametrize("field", ["drop_prob", "dup_prob", "delay_prob"])
    def test_probability_bounds(self, field):
        with pytest.raises(SimConfigError):
            LinkFault(**{field: 1.5})
        with pytest.raises(SimConfigError):
            LinkFault(**{field: -0.1})

    def test_negative_delay_rejected(self):
        with pytest.raises(SimConfigError):
            LinkFault(delay_seconds=-1.0)

    def test_nonpositive_factors_rejected(self):
        with pytest.raises(SimConfigError):
            LinkFault(latency_factor=0.0)
        with pytest.raises(SimConfigError):
            LinkFault(bandwidth_factor=-2.0)


class TestSlowNode:
    def test_factor_below_one_rejected(self):
        with pytest.raises(SimConfigError):
            SlowNode(node=0, factor=0.5)


class TestFaultSpec:
    def test_lists_coerced_to_tuples(self):
        spec = FaultSpec(crashes=[RankCrash(node=0, at=1.0)])
        assert isinstance(spec.crashes, tuple)

    def test_duplicate_crash_node_rejected(self):
        with pytest.raises(SimConfigError, match="more than once"):
            FaultSpec(crashes=(RankCrash(node=1, at=1.0), RankCrash(node=1, at=2.0)))

    def test_dict_round_trip(self):
        spec = FaultSpec(
            crashes=(RankCrash(node=1, at=0.5),),
            links=(LinkFault(src=0, dst=2, drop_prob=0.1, delay_prob=0.2, delay_seconds=3.0),),
            slow_nodes=(SlowNode(node=3, factor=4.0),),
            seed=7,
        )
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip(self, tmp_path):
        spec = FaultSpec(
            crashes=(RankCrash(node=0, at=1.0),),
            links=(LinkFault(dup_prob=0.5),),
            seed=3,
        )
        path = tmp_path / "spec.json"
        spec.to_json(str(path))
        assert FaultSpec.from_json(str(path)) == spec

    def test_from_dict_defaults(self):
        spec = FaultSpec.from_dict({})
        assert spec == FaultSpec()


class TestFaultPolicy:
    def test_defaults_valid(self):
        p = FaultPolicy()
        assert p.max_attempts >= 1 and p.backoff >= 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout": 0.0},
            {"timeout_multiplier": -1.0},
            {"min_timeout": 0.0},
            {"backoff": 0.5},
            {"max_attempts": 0},
            {"suspect_after": 0},
            {"drain_rounds": 0},
            {"drain_timeout": -1.0},
        ],
    )
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(SimConfigError):
            FaultPolicy(**kwargs)
