"""Unit tests for the network and cost models and the topology."""

import pytest

from repro.simmpi import (
    ARIES_LIKE,
    ETHERNET_LIKE,
    XC40_AT_SCALE,
    ClusterTopology,
    CostModel,
    NetworkModel,
    calibrate_cost_model,
)
from repro.simmpi.errors import SimConfigError


class TestNetworkModel:
    def test_p2p_scales_with_bytes(self):
        n = NetworkModel()
        assert n.p2p_time(10**6, False) > n.p2p_time(10, False)

    def test_intra_faster_than_inter(self):
        n = NetworkModel()
        assert n.p2p_time(1000, True) < n.p2p_time(1000, False)

    def test_collectives_grow_with_ranks(self):
        n = NetworkModel()
        assert n.barrier_time(1024) > n.barrier_time(4)
        assert n.bcast_time(1024, 100) > n.bcast_time(4, 100)
        assert n.alltoallv_time(1024, 100, 100 * 1024) > n.alltoallv_time(4, 100, 400)

    def test_single_rank_collectives_free(self):
        n = NetworkModel()
        assert n.barrier_time(1) == 0.0
        assert n.bcast_time(1, 10**9) == 0.0
        assert n.alltoallv_time(1, 0, 0) == 0.0

    def test_straggler_term_off_by_default(self):
        assert ARIES_LIKE.barrier_time(8192) < 1e-3
        assert XC40_AT_SCALE.barrier_time(8192) > 0.1

    def test_rma_cheaper_than_send_recv_roundtrip(self):
        """One-sided accumulate must beat a p2p round trip plus target CPU —
        the premise of the paper's optimisation."""
        n = NetworkModel()
        rma = n.rma_accumulate_time(200, False)
        two_sided = 2 * n.p2p_time(200, False) + 2 * n.sw_overhead
        assert rma < two_sided

    def test_invalid_params_rejected(self):
        with pytest.raises(SimConfigError):
            NetworkModel(inter_latency=0.0)
        with pytest.raises(SimConfigError):
            NetworkModel(straggler_coeff=-1.0)

    def test_ethernet_slower_than_aries(self):
        assert ETHERNET_LIKE.p2p_time(10**6, False) > ARIES_LIKE.p2p_time(10**6, False)


class TestCostModel:
    def test_distance_cost_linear_in_evals_and_dim(self):
        c = CostModel()
        assert c.distance_cost(200, 128) == pytest.approx(2 * c.distance_cost(100, 128))
        assert c.distance_cost(100, 256) > c.distance_cost(100, 128)

    def test_hnsw_search_cost_grows_with_size_and_ef(self):
        c = CostModel()
        assert c.hnsw_search_cost(10**9, 128, 50, 16) > c.hnsw_search_cost(10**6, 128, 50, 16)
        assert c.hnsw_search_cost(10**6, 128, 200, 16) > c.hnsw_search_cost(10**6, 128, 50, 16)

    def test_hnsw_build_cost_superlinear_in_points(self):
        c = CostModel()
        assert c.hnsw_build_cost(20000, 128, 100, 16) > 2 * c.hnsw_build_cost(10000, 128, 100, 16)

    def test_tiny_partition_search_has_floor(self):
        c = CostModel()
        assert c.hnsw_search_cost(1, 128, 50, 16) > 0

    def test_invalid_rates_rejected(self):
        with pytest.raises(SimConfigError):
            CostModel(sec_per_madd=0.0)

    def test_calibration_produces_positive_rates(self):
        c = calibrate_cost_model(dim=32, n=2000, repeats=1)
        assert c.sec_per_madd > 0
        assert c.sec_per_dist_call > 0


class TestTopology:
    def test_node_mapping_blocks(self):
        t = ClusterTopology(n_ranks=48, cores_per_node=24)
        assert t.n_nodes == 2
        assert t.node_of(0) == 0 and t.node_of(23) == 0 and t.node_of(24) == 1
        assert list(t.ranks_on_node(1)) == list(range(24, 48))

    def test_partial_last_node(self):
        t = ClusterTopology(n_ranks=30, cores_per_node=24)
        assert t.n_nodes == 2
        assert list(t.ranks_on_node(1)) == list(range(24, 30))

    def test_same_node(self):
        t = ClusterTopology(n_ranks=8, cores_per_node=4)
        assert t.same_node(0, 3) and not t.same_node(3, 4)

    def test_bad_args(self):
        with pytest.raises(SimConfigError):
            ClusterTopology(n_ranks=0)
        t = ClusterTopology(n_ranks=4, cores_per_node=2)
        with pytest.raises(SimConfigError):
            t.node_of(4)
        with pytest.raises(SimConfigError):
            t.ranks_on_node(2)
