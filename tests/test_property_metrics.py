"""Property-based tests (hypothesis) for metric axioms.

The VP-tree's pruning correctness rests on the triangle inequality of the
metrics flagged ``is_true_metric``; these properties are the load-bearing
invariants.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.metrics import get_metric

_vec = arrays(
    np.float64,
    (8,),
    elements=st.floats(-100, 100, allow_nan=False, allow_infinity=False),
)

TRUE_METRICS = ["l2", "l1", "linf"]


@settings(max_examples=60, deadline=None)
@given(a=_vec, b=_vec, c=_vec, name=st.sampled_from(TRUE_METRICS))
def test_triangle_inequality(a, b, c, name):
    m = get_metric(name)
    ab = m.pair(a, b)
    bc = m.pair(b, c)
    ac = m.pair(a, c)
    assert ac <= ab + bc + 1e-7 * (1 + ab + bc)


@settings(max_examples=60, deadline=None)
@given(a=_vec, b=_vec, name=st.sampled_from(TRUE_METRICS + ["sqeuclidean", "cosine"]))
def test_symmetry_and_nonnegativity(a, b, name):
    m = get_metric(name)
    d1, d2 = m.pair(a, b), m.pair(b, a)
    assert d1 >= -1e-9
    assert abs(d1 - d2) <= 1e-7 * (1 + abs(d1))


@settings(max_examples=60, deadline=None)
@given(a=_vec, name=st.sampled_from(TRUE_METRICS + ["sqeuclidean"]))
def test_identity(a, name):
    m = get_metric(name)
    assert m.pair(a, a) <= 1e-9


@settings(max_examples=30, deadline=None)
@given(a=_vec, b=_vec)
def test_sqeuclidean_monotone_with_l2(a, b):
    """sqeuclidean must induce the same ordering as l2 (k-NN equivalence)."""
    l2 = get_metric("l2")
    sq = get_metric("sqeuclidean")
    assert abs(sq.pair(a, b) - l2.pair(a, b) ** 2) <= 1e-6 * (1 + sq.pair(a, b))
