"""The observability layer: metrics registry, traces, exporters.

The load-bearing contract is *zero perturbation*: enabling tracing and
metrics must not change a single bit of the search results nor a single
tick of the virtual clock, in any execution mode — two-sided, one-sided,
windowed, multiple-owner, adaptive, fault-injected, and open-loop
serving.  The rest is the export surface: Chrome trace events Perfetto
can load (per-proc tracks, flow arrows, counter tracks), schema-versioned
JSONL, the metrics dump, the explain drill-down, and the SearchReport
JSON round-trip.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.faults import FaultSpec, RankCrash
from repro.obs import (
    EVENTS_SCHEMA,
    INSTANT_NAMES,
    SPAN_NAMES,
    MetricsRegistry,
    chrome_trace,
    events_lines,
    render_explain,
    validate_chrome_trace,
    validate_events,
    write_chrome_trace,
    write_events_jsonl,
    write_metrics_json,
)
from repro.runtime.report import REPORT_SCHEMA, SearchReport
from repro.serving.admission import AdmissionQueue
from repro.serving.cache import ResultCache


def make_data(n=360, dim=12, n_queries=24, seed=3):
    rng = np.random.default_rng(seed)
    centers = rng.normal(0, 8, size=(6, dim))
    X = np.concatenate(
        [c + rng.normal(0, 0.6, size=(60, dim)) for c in centers]
    ).astype(np.float32)
    Q = (X[rng.choice(n, n_queries, replace=False)] + 0.05).astype(np.float32)
    return X, Q


def run(X, Q, traced: bool, **overrides):
    cfg = SystemConfig(
        n_cores=4,
        cores_per_node=1,
        k=5,
        n_probe=2,
        seed=0,
        # explain_top enables the recorder without writing any files
        explain_top=3 if traced else 0,
        **overrides,
    )
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann.query(Q)


#: every execution mode the zero-perturbation contract must hold in
MODES = {
    "two_sided": dict(one_sided=False),
    "one_sided": dict(one_sided=True),
    "one_sided_window": dict(one_sided=True, dispatch_window=2),
    "window": dict(one_sided=False, dispatch_window=2),
    "multiple_owner": dict(owner_strategy="multiple", batch_size=1),
    "adaptive": dict(routing="adaptive", one_sided=False),
    "replicated": dict(replication_factor=2, replica_selector="least_loaded"),
    "faults": dict(
        one_sided=False,
        replication_factor=2,
        fault_spec=FaultSpec(crashes=(RankCrash(node=1, at=0.002),)),
    ),
    "serving": dict(
        one_sided=False,
        arrival="poisson:5000",
        cache_size=16,
        queue_depth=4,
        overload_policy="shed_oldest",
    ),
}


class TestMetricsRegistry:
    def test_counter_get_or_create_identity(self):
        reg = MetricsRegistry()
        c = reg.counter("x.count")
        c.inc()
        c.inc(2)
        assert reg.counter("x.count") is c
        assert reg.value("x.count") == 3

    def test_labels_distinguish_instruments(self):
        reg = MetricsRegistry()
        reg.counter("hits", core=0).inc(5)
        reg.counter("hits", core=1).inc(7)
        assert reg.value("hits", core=0) == 5
        assert reg.value("hits", core=1) == 7
        assert reg.value("hits") == 0

    def test_gauge_track_max(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth")
        g.track_max(4)
        g.track_max(2)
        assert g.value == 4
        g.set(1)
        assert reg.value("depth") == 1

    def test_histogram_summary(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        for v in (0.001, 0.002, 5.0, 100.0):
            h.observe(v)
        s = h.summary()
        assert s["count"] == 4
        assert s["min"] == 0.001 and s["max"] == 100.0
        assert s["buckets"]["+inf"] == 1  # 100.0 overflows the ladder

    def test_merge_semantics(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").inc(2)
        b.counter("n").inc(3)
        a.gauge("peak").set(5)
        b.gauge("peak").set(9)
        b.histogram("lat").observe(0.5)
        a.merge(b)
        assert a.value("n") == 5  # counters add
        assert a.value("peak") == 9  # gauges keep the peak
        assert a.histogram("lat").count == 1  # histograms pool

    def test_dump_is_json_safe(self):
        reg = MetricsRegistry()
        reg.counter("n", core=np.int64(1)).inc(np.int64(4))
        reg.gauge("g").set(np.float64(1.5))
        reg.histogram("h").observe(0.01)
        dump = json.loads(json.dumps(reg.dump()))
        assert dump["counters"]["n{core=1}"] == 4
        assert dump["gauges"]["g"] == 1.5
        assert dump["histograms"]["h"]["count"] == 1


class TestRegistryBackedLedgers:
    def test_admission_ledgers_live_in_registry(self):
        reg = MetricsRegistry()
        adm = AdmissionQueue(2, "shed_oldest", metrics=reg)
        for qid in range(4):
            adm.offer(qid)
        adm.begin_service()
        assert reg.value("admission.admitted") == adm.admitted == 1
        assert reg.value("admission.shed") == adm.shed == 2
        assert reg.value("admission.max_depth") == adm.max_depth_seen == 2

    def test_cache_ledgers_live_in_registry(self):
        reg = MetricsRegistry()
        cache = ResultCache(2, metrics=reg)
        q = np.ones(4, dtype=np.float32)
        key = cache.key(q)
        assert cache.get(key) is None
        cache.put(key, (q, q))
        assert cache.get(key) is not None
        assert reg.value("cache.misses") == cache.misses == 1
        assert reg.value("cache.hits") == cache.hits == 1

    def test_shared_registry_aliases_one_counter(self):
        """Two holders of the same registry read/write the same instrument —
        the property that makes report-side assignments idempotent."""
        reg = MetricsRegistry()
        a = AdmissionQueue(0, "block", metrics=reg)
        b = AdmissionQueue(0, "block", metrics=reg)
        a.admitted += 2
        b.admitted += 3
        assert a.admitted == b.admitted == 5


class TestZeroPerturbation:
    """Tracing on vs off: bit-identical results, identical virtual time."""

    @pytest.fixture(scope="class")
    def data(self):
        return make_data()

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_bit_identity_and_makespan(self, data, mode):
        X, Q = data
        D0, I0, rep0 = run(X, Q, traced=False, **MODES[mode])
        D1, I1, rep1 = run(X, Q, traced=True, **MODES[mode])
        assert np.array_equal(D0, D1, equal_nan=True)
        assert np.array_equal(I0, I1)
        # zero-virtual-time invariant: the recorder never advances clocks,
        # never sends a message, and never touches an instrument
        assert rep0.total_seconds == rep1.total_seconds
        assert rep0.metrics == rep1.metrics
        assert rep0.trace is None
        assert rep1.trace is not None

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_span_vocabulary_is_pinned(self, data, mode):
        X, Q = data
        _, _, rep = run(X, Q, traced=True, **MODES[mode])
        unknown_spans = rep.trace.span_names() - SPAN_NAMES
        unknown_instants = rep.trace.instant_names() - INSTANT_NAMES
        assert not unknown_spans, unknown_spans
        assert not unknown_instants, unknown_instants


class TestExporters:
    @pytest.fixture(scope="class")
    def traced(self):
        X, Q = make_data()
        return run(X, Q, traced=True, one_sided=False, dispatch_window=2)

    @pytest.fixture(scope="class")
    def served(self):
        X, Q = make_data()
        return run(X, Q, traced=True, **MODES["serving"])

    def test_chrome_trace_is_schema_valid(self, traced):
        rep = traced[2]
        obj = chrome_trace(rep.trace, rep)
        assert validate_chrome_trace(obj) == []

    def test_chrome_trace_has_tracks_flows_and_counters(self, traced):
        rep = traced[2]
        events = chrome_trace(rep.trace, rep)["traceEvents"]
        phases = {e["ph"] for e in events}
        assert "M" in phases  # per-proc track metadata
        assert "X" in phases  # complete spans
        # flow arrows pair master task_send with worker queue spans
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert starts and len(starts) == len(finishes)
        counters = {e["name"] for e in events if e["ph"] == "C"}
        assert "queue_depth" in counters

    def test_events_jsonl_is_schema_valid(self, served):
        rep = served[2]
        lines = events_lines(rep.trace, rep)
        assert validate_events(lines) == []
        header = json.loads(lines[0])
        assert header["schema"] == EVENTS_SCHEMA
        kinds = {json.loads(ln)["type"] for ln in lines[1:]}
        # the serving timeline is folded in as per-query records
        assert "query" in kinds
        assert {"span", "instant", "counter"} <= kinds

    def test_unknown_span_name_is_an_error(self, traced):
        rep = traced[2]
        lines = list(events_lines(rep.trace, rep))
        forged = dict(json.loads(lines[1]), type="span", name="not_a_span")
        errors = validate_events(lines + [json.dumps(forged)])
        assert any("not_a_span" in e for e in errors)

    def test_writers_and_validator_cli(self, traced, tmp_path):
        from repro.obs.validate import main as validate_main

        rep = traced[2]
        trace_p = tmp_path / "trace.json"
        events_p = tmp_path / "events.jsonl"
        metrics_p = tmp_path / "metrics.json"
        write_chrome_trace(trace_p, rep.trace, rep)
        write_events_jsonl(events_p, rep.trace, rep)
        write_metrics_json(metrics_p, rep.metrics)
        assert validate_main([str(trace_p), str(events_p)]) == 0
        dump = json.loads(metrics_p.read_text())
        assert dump["counters"]["coordinator.tasks_sent"] > 0

    def test_explain_renders_span_trees(self, traced):
        rep = traced[2]
        text = render_explain(rep, 2)
        assert "slowest 2" in text
        assert "queue" in text and "service" in text
        assert "search" in text

    def test_explain_without_trace_degrades(self, traced):
        X, Q = make_data()
        _, _, rep = run(X, Q, traced=False)
        assert "no trace" in render_explain(rep, 2)


class TestReportRoundTrip:
    @pytest.fixture(scope="class")
    def served(self):
        # every query arrives at t=0 against a depth-3 queue, so shed_oldest
        # must drop some — the NaN latencies the round-trip has to survive
        X, Q = make_data()
        return run(
            X,
            Q,
            traced=True,
            one_sided=False,
            arrival="trace:" + ",".join(["0"] * len(Q)),
            queue_depth=3,
            overload_policy="shed_oldest",
            cache_size=16,
        )

    def test_to_dict_is_json_serializable(self, served):
        rep = served[2]
        data = json.loads(json.dumps(rep.to_dict()))
        assert data["schema"] == REPORT_SCHEMA
        assert "trace" not in data

    def test_round_trip_preserves_fields(self, served):
        rep = served[2]
        back = SearchReport.from_dict(json.loads(json.dumps(rep.to_dict())))
        assert back.total_seconds == rep.total_seconds
        assert back.n_queries == rep.n_queries
        assert back.offered_queries == rep.offered_queries
        assert back.shed_queries == rep.shed_queries
        assert back.cache_hits == rep.cache_hits
        assert np.array_equal(back.dispatch_counts, rep.dispatch_counts)
        assert np.array_equal(
            back.query_latencies, rep.query_latencies, equal_nan=True
        )
        assert np.array_equal(
            back.queue_depth_timeline, rep.queue_depth_timeline, equal_nan=True
        )
        assert back.metrics == rep.metrics
        # NaN-dropped queries survive the None<->NaN JSON mapping
        assert np.isnan(rep.query_latencies).any()
        # derived properties keep working on the reconstruction
        assert back.throughput == rep.throughput

    def test_round_trip_preserves_fault_events(self):
        X, Q = make_data()
        _, _, rep = run(X, Q, traced=False, **MODES["faults"])
        assert rep.fault_events
        back = SearchReport.from_dict(json.loads(json.dumps(rep.to_dict())))
        assert len(back.fault_events) == len(rep.fault_events)
        assert back.fault_events[0].kind == rep.fault_events[0].kind
        assert back.crashed_pids == rep.crashed_pids
