"""Full-pipeline integration test: the Table III experiment in miniature.

Generates a catalog dataset, builds both systems (ours and the KD
baseline) on the same simulated cluster, queries both, and checks every
cross-system invariant at once — the closest thing to running the paper's
evaluation end-to-end in a single test.
"""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import load_dataset
from repro.eval import load_distribution, recall_at_k
from repro.hnsw import HnswParams
from repro.kdtree import KDBaselineSystem


@pytest.fixture(scope="module")
def experiment():
    ds = load_dataset("ANN_SIFT1B", n_points=2000, n_queries=40, k=10, seed=99)
    cfg = SystemConfig(
        n_cores=8,
        cores_per_node=4,
        k=10,
        hnsw=HnswParams(M=8, ef_construction=50, seed=99),
        n_probe=3,
        seed=99,
    )
    ours = DistributedANN(cfg)
    ours_build = ours.fit(ds.X)
    D, I, rep = ours.query(ds.Q)

    kd = KDBaselineSystem(cfg, leaf_size=32)
    kd.fit(ds.X)
    Dk, Ik, repk = kd.query(ds.Q)
    return ds, ours_build, (D, I, rep), (Dk, Ik, repk)


class TestPipeline:
    def test_baseline_exact_ours_accurate(self, experiment):
        ds, _, (D, I, rep), (Dk, Ik, repk) = experiment
        assert recall_at_k(Ik, ds.gt_ids, ds.gt_dists, Dk) == 1.0
        assert recall_at_k(I, ds.gt_ids, ds.gt_dists, D) >= 0.8

    def test_ours_faster(self, experiment):
        _, _, (_, _, rep), (_, _, repk) = experiment
        assert rep.total_seconds < repk.total_seconds

    def test_ours_does_less_work(self, experiment):
        _, _, (_, _, rep), (_, _, repk) = experiment
        assert rep.mean_fanout < repk.mean_fanout
        assert rep.worker_breakdown["compute"] < repk.worker_breakdown["compute"]

    def test_construction_accounted(self, experiment):
        _, build, *_ = experiment
        assert build.total_seconds >= build.hnsw_seconds
        assert sum(build.partition_sizes) == 2000

    def test_load_roughly_balanced_on_natural_queries(self, experiment):
        _, _, (_, _, rep), _ = experiment
        stats = load_distribution(rep.dispatch_counts)
        assert stats.total_tasks == rep.tasks
        assert stats.imbalance < 6.0

    def test_reports_internally_consistent(self, experiment):
        ds, _, (D, I, rep), _ = experiment
        assert rep.tasks == int(rep.dispatch_counts.sum())
        assert rep.n_queries == ds.n_queries
        assert 0 <= rep.comm_fraction <= 1
        # distances ascending, ids valid
        for row_d, row_i in zip(D, I):
            finite = row_d[np.isfinite(row_d)]
            assert np.all(np.diff(finite) >= -1e-9)
            assert row_i[row_i >= 0].max(initial=-1) < ds.n_points
