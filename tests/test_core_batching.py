"""Dispatch batching through the simulated cluster.

``SystemConfig.batch_size`` buffers per-partition dispatch into batch task
messages that workers answer with one ``knn_search_batch`` call.  The
contract (docs/performance.md): results and virtual search costs are
identical at every batch size; only the number of task/result *messages*
changes.  These tests pin the D/I bit-identity across batch sizes and comm
modes, golden makespans and message counts for a fixed scenario, the
config-validation guard rails, and the searcher-level batch == loop-of-
searches equivalence the whole construction rests on.
"""

import hashlib

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.core.searcher import RealHnswSearcher, generic_search_batch
from repro.faults.spec import FaultSpec
from repro.hnsw import HnswParams
from repro.simmpi.errors import SimConfigError

HNSW = HnswParams(M=8, ef_construction=40)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(3)
    X = rng.normal(size=(600, 16)).astype(np.float32)
    Q = rng.normal(size=(24, 16)).astype(np.float32)
    return X, Q


def _run(corpus, batch_size, one_sided):
    X, Q = corpus
    cfg = SystemConfig(
        n_cores=8,
        cores_per_node=4,
        k=5,
        hnsw=HNSW,
        n_probe=3,
        seed=0,
        one_sided=one_sided,
        batch_size=batch_size,
    )
    ann = DistributedANN(cfg)
    ann.fit(X)
    return ann.query(Q)


class TestClusterGoldens:
    """Frozen makespans / counts / result digest for one seeded scenario.

    The digest is identical across every (batch_size, comm mode) cell —
    that IS the batching contract; the makespans differ because message
    timing legitimately changes with B.
    """

    DIGEST = "1f3ab48ae0dc047f"
    GOLDEN = {
        # (batch_size, one_sided): (makespan, tasks, task_messages)
        (1, True): (4.781760000000001e-05, 72, 72),
        (1, False): (4.9312000000000174e-05, 72, 72),
        (4, True): (4.93536e-05, 72, 21),
        (4, False): (3.069480000000001e-05, 72, 21),
    }

    @pytest.mark.parametrize("batch_size,one_sided", sorted(GOLDEN))
    def test_golden(self, corpus, batch_size, one_sided):
        D, I, rep = _run(corpus, batch_size, one_sided)
        makespan, tasks, messages = self.GOLDEN[(batch_size, one_sided)]
        assert rep.total_seconds == makespan
        assert rep.tasks == tasks
        assert rep.task_messages == messages
        digest = hashlib.sha256(D.tobytes() + I.tobytes()).hexdigest()[:16]
        assert digest == self.DIGEST

    def test_batched_results_bit_identical_to_unbatched(self, corpus):
        D1, I1, rep1 = _run(corpus, 1, True)
        D4, I4, rep4 = _run(corpus, 4, True)
        np.testing.assert_array_equal(D4, D1)
        np.testing.assert_array_equal(I4, I1)
        assert rep4.tasks == rep1.tasks  # logical task count unchanged
        assert rep4.task_messages < rep1.task_messages

    def test_message_count_at_batch_one_equals_tasks(self, corpus):
        _, _, rep = _run(corpus, 1, False)
        assert rep.task_messages == rep.tasks


class TestConfigValidation:
    def test_batch_size_must_be_positive(self):
        with pytest.raises(SimConfigError, match="batch_size"):
            SystemConfig(n_cores=4, cores_per_node=2, batch_size=0)

    def test_batching_requires_approx_routing(self):
        with pytest.raises(SimConfigError, match="routing='approx'"):
            SystemConfig(
                n_cores=4, cores_per_node=2, batch_size=4,
                routing="adaptive", one_sided=False,
            )

    def test_batching_requires_master_owner(self):
        with pytest.raises(SimConfigError, match="owner_strategy='master'"):
            SystemConfig(
                n_cores=4, cores_per_node=2, batch_size=4, owner_strategy="multiple"
            )

    def test_batching_incompatible_with_faults(self):
        with pytest.raises(SimConfigError, match="fault"):
            SystemConfig(
                n_cores=4, cores_per_node=2, batch_size=4, one_sided=False,
                fault_spec=FaultSpec(seed=1),
            )

    def test_batch_size_one_always_allowed(self):
        cfg = SystemConfig(n_cores=4, cores_per_node=2, batch_size=1)
        assert cfg.batch_size == 1


class TestSearcherBatch:
    """search_batch row i == search(Q[i]) — results and virtual seconds."""

    def test_real_hnsw_searcher_batch_equivalence(self, corpus):
        X, Q = corpus
        ann = DistributedANN(
            SystemConfig(n_cores=4, cores_per_node=2, k=5, hnsw=HNSW, seed=0)
        )
        ann.fit(X)
        part = ann.partitions[0]
        searcher = RealHnswSearcher(ann.config.cost, ef_search=ann.config.effective_ef_search)

        ds, idss, seconds = searcher.search_batch(part, Q, 5)
        loop_seconds = 0.0
        for row, q in enumerate(Q):
            d, ids, s = searcher.search(part, q, 5)
            loop_seconds += s
            np.testing.assert_array_equal(ds[row], d)
            np.testing.assert_array_equal(idss[row], ids)
        assert seconds == pytest.approx(loop_seconds)

    def test_generic_fallback_matches_loop(self, corpus):
        X, Q = corpus
        ann = DistributedANN(
            SystemConfig(n_cores=4, cores_per_node=2, k=5, hnsw=HNSW, seed=0)
        )
        ann.fit(X)
        part = ann.partitions[0]
        searcher = RealHnswSearcher(ann.config.cost, ef_search=ann.config.effective_ef_search)

        ds, idss, seconds = generic_search_batch(searcher, part, Q, 5)
        bds, bidss, bseconds = searcher.search_batch(part, Q, 5)
        assert seconds == pytest.approx(bseconds)
        for a, b in zip(ds, bds):
            np.testing.assert_array_equal(a, b)
        for a, b in zip(idss, bidss):
            np.testing.assert_array_equal(a, b)
