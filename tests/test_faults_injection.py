"""Engine-level fault injection: crashes, link faults, slow nodes, timeouts."""

import pytest

from repro.faults import FaultInjector, FaultSpec, LinkFault, RankCrash, SlowNode
from repro.simmpi import Simulation
from repro.simmpi.engine import WAIT_TIMED_OUT
from repro.simmpi.network import NetworkModel


def faulted_sim(**spec_kwargs):
    inj = FaultInjector(FaultSpec(**spec_kwargs))
    return Simulation(faults=inj), inj


class TestWaitAnyTimeout:
    def test_timeout_fires_at_deadline(self):
        sim = Simulation()

        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            fired, payload = yield from ctx.wait_any([req], timeout=1.5)
            return fired, payload, ctx.now

        pid = sim.add_proc(p)
        fired, payload, t = sim.run().results[pid]
        assert fired == WAIT_TIMED_OUT and payload is None
        assert t == pytest.approx(1.5)

    def test_request_survives_timeout_and_completes_later(self):
        sim = Simulation()

        def sender(ctx):
            yield from ctx.compute(2.0)
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), "late", source=0, tag=0, nbytes=8, same_node=True
            )

        def waiter(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            fired, _ = yield from ctx.wait_any([req], timeout=0.5)
            assert fired == WAIT_TIMED_OUT
            # the receive stayed posted; waiting again gets the message
            fired, payload = yield from ctx.wait_any([req])
            return fired, payload, ctx.now

        sim.add_proc(sender)
        w = sim.add_proc(waiter)
        fired, payload, t = sim.run().results[w]
        assert (fired, payload) == (0, "late")
        assert t > 2.0

    def test_completion_beats_timeout(self):
        sim = Simulation()

        def sender(ctx):
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), "fast", source=0, tag=0, nbytes=8, same_node=True
            )

        def waiter(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            fired, payload = yield from ctx.wait_any([req], timeout=100.0)
            return fired, payload, ctx.now

        sim.add_proc(sender)
        w = sim.add_proc(waiter)
        fired, payload, t = sim.run().results[w]
        assert (fired, payload) == (0, "fast")
        assert t < 100.0  # the stale timer entry never fired

    def test_negative_timeout_rejected(self):
        sim = Simulation()

        def p(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.wait_any([req], timeout=-1.0)

        sim.add_proc(p)
        with pytest.raises(Exception, match="timeout"):
            sim.run()


class TestRankCrashes:
    def test_crash_stops_computing_proc(self):
        sim, _ = faulted_sim(crashes=(RankCrash(node=1, at=1.0),))

        def busy(ctx):
            for _ in range(100):
                yield from ctx.compute(0.25)
            return "finished"

        survivor = sim.add_proc(busy, node=0)
        victim = sim.add_proc(busy, node=1)
        out = sim.run()
        assert out.results[survivor] == "finished"
        assert out.results[victim] is None
        assert out.crashed_pids == (victim,)
        assert any(e.kind == "crash" and e.detail["node"] == 1 for e in out.fault_events)

    def test_crash_of_blocked_proc_is_not_a_deadlock(self):
        sim, _ = faulted_sim(crashes=(RankCrash(node=0, at=1.0),))

        def stuck(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            yield from ctx.wait(req)  # nothing will ever arrive

        pid = sim.add_proc(stuck, node=0, name="stuck")
        out = sim.run()  # must NOT raise DeadlockError
        assert out.crashed_pids == (pid,)

    def test_message_to_crashed_node_is_lost(self):
        sim, _ = faulted_sim(crashes=(RankCrash(node=1, at=1.0),))
        sink = sim.new_mailbox("sink", node=1)

        def sender(ctx):
            yield from ctx.compute(2.0)  # well past the crash
            yield from ctx.send_to_mailbox(
                sink, "into the void", source=0, tag=9, nbytes=8, same_node=False
            )

        sim.add_proc(sender, node=0)
        out = sim.run()
        assert len(sink._queue) == 0
        lost = [e for e in out.fault_events if e.kind == "msg_lost_node_down"]
        assert lost and lost[0].detail["dst"] == 1

    def test_message_before_crash_is_delivered(self):
        sim, _ = faulted_sim(crashes=(RankCrash(node=1, at=50.0),))
        sink = sim.new_mailbox("sink", node=1)

        def sender(ctx):
            yield from ctx.send_to_mailbox(
                sink, "in time", source=0, tag=9, nbytes=8, same_node=False
            )

        sim.add_proc(sender, node=0)
        sim.run()
        assert len(sink._queue) == 1


class TestLinkFaults:
    def test_drop_all(self):
        sim, _ = faulted_sim(links=(LinkFault(drop_prob=1.0),))
        sink = sim.new_mailbox("sink")

        def sender(ctx):
            yield from ctx.send_to_mailbox(sink, "x", source=0, tag=0, nbytes=8, same_node=False)

        sim.add_proc(sender, node=0)
        out = sim.run()
        assert len(sink._queue) == 0
        assert [e.kind for e in out.fault_events] == ["msg_drop"]

    def test_duplicate_all(self):
        sim, _ = faulted_sim(links=(LinkFault(dup_prob=1.0),))
        sink = sim.new_mailbox("sink")

        def sender(ctx):
            yield from ctx.send_to_mailbox(sink, "x", source=0, tag=0, nbytes=8, same_node=False)

        sim.add_proc(sender, node=0)
        out = sim.run()
        assert len(sink._queue) == 2
        assert any(e.kind == "msg_dup" for e in out.fault_events)

    def test_delay_postpones_arrival(self):
        sim, _ = faulted_sim(links=(LinkFault(delay_prob=1.0, delay_seconds=5.0),))

        def sender(ctx):
            yield from ctx.send_to_mailbox(
                sim.mailbox_of(1), "slow", source=0, tag=0, nbytes=8, same_node=False
            )

        def receiver(ctx):
            req = yield from ctx.post_recv(ctx.mailbox)
            payload = yield from ctx.wait(req)
            return payload, ctx.now

        sim.add_proc(sender, node=0)
        r = sim.add_proc(receiver, node=1)
        payload, t = sim.run().results[r]
        assert payload == "slow" and t > 5.0

    def test_first_matching_rule_wins(self):
        inj = FaultInjector(
            FaultSpec(links=(LinkFault(src=0, dst=1, drop_prob=1.0), LinkFault(dup_prob=1.0)))
        )
        net = NetworkModel()
        assert inj.transfer_times(0, 1, 100, False, net, 0.0) == []  # specific rule
        assert len(inj.transfer_times(2, 3, 100, False, net, 0.0)) == 2  # wildcard rule

    def test_seeded_rng_is_reproducible(self):
        net = NetworkModel()
        spec = FaultSpec(links=(LinkFault(drop_prob=0.5),), seed=42)
        a = [FaultInjector(spec).transfer_times(0, 1, 8, False, net, 0.0) for _ in range(1)]
        b = [FaultInjector(spec).transfer_times(0, 1, 8, False, net, 0.0) for _ in range(1)]
        assert a == b

    def test_degraded_link_factors_slow_the_wire(self):
        net = NetworkModel()
        clean = net.p2p_time(1_000_000, same_node=False)
        slow = net.p2p_time(1_000_000, same_node=False, latency_factor=3.0, bandwidth_factor=0.5)
        assert slow > clean


class TestSlowNodes:
    def test_compute_charge_scaled(self):
        sim, _ = faulted_sim(slow_nodes=(SlowNode(node=1, factor=3.0),))

        def p(ctx):
            yield from ctx.compute(1.0)
            return ctx.now

        normal = sim.add_proc(p, node=0)
        slow = sim.add_proc(p, node=1)
        out = sim.run()
        assert out.results[normal] == pytest.approx(1.0)
        assert out.results[slow] == pytest.approx(3.0)
