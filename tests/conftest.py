"""Shared fixtures.

The repo is importable either via the editable install or, as a fallback,
by prepending ``src/`` to ``sys.path`` (useful in environments where the
editable install cannot be performed, e.g. offline without the ``wheel``
package).
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    try:
        import repro  # noqa: F401
    except ImportError:
        sys.path.insert(0, _SRC)

import numpy as np
import pytest

from repro.datasets import brute_force_knn, sample_queries, sift_like


@pytest.fixture(scope="session")
def small_sift():
    """1500-point SIFT-like corpus with 30 queries and exact ground truth."""
    X = sift_like(1500, seed=11)
    Q = sample_queries(X, 30, noise_scale=0.05, seed=12)
    gt_d, gt_i = brute_force_knn(X, Q, 10)
    return X, Q, gt_d, gt_i


@pytest.fixture(scope="session")
def tiny_clustered():
    """400 low-dimensional clustered points for fast exact-search tests."""
    rng = np.random.default_rng(7)
    centers = rng.normal(0, 10, size=(5, 16))
    X = np.concatenate(
        [c + rng.normal(0, 1, size=(80, 16)) for c in centers]
    ).astype(np.float32)
    Q = X[rng.choice(len(X), 20, replace=False)] + rng.normal(
        0, 0.3, size=(20, 16)
    ).astype(np.float32)
    Q = Q.astype(np.float32)
    gt_d, gt_i = brute_force_knn(X, Q, 5)
    return X, Q, gt_d, gt_i
