"""Native-build bit-identity gate coverage.

The compiled INSERT path must be a pure wall-clock optimisation: same
graphs, same counters, same artifacts as the python path, and any
failure of its bit-identity self-checks (or the escape hatch) must fall
back to python cleanly.  The PQ fast-scan kernel carries the same
contract against its numpy fallback.
"""

import numpy as np
import pytest

import repro.hnsw.native as hnsw_native
import repro.pq.native as pq_native
from repro.hnsw import HnswIndex, HnswParams
from repro.pq import IVFPQIndex
from repro.pq.kernels import _adc_scan_numpy, adc_scan, transpose_codes
from repro.pq.quantizer import ProductQuantizer


@pytest.fixture
def corpus():
    rng = np.random.default_rng(11)
    return rng.normal(0, 1, size=(800, 32)).astype(np.float32)


@pytest.fixture
def params():
    return HnswParams(M=8, ef_construction=40, seed=3)


def _build_pair(X, params, metric="l2"):
    """One native-built and one python-built index over the same data."""
    fast = HnswIndex(dim=32, params=params, metric=metric, capacity=len(X))
    fast.add_items(X)
    slow = HnswIndex(dim=32, params=params, metric=metric, capacity=len(X))
    slow._native_build = None
    slow._native = None
    slow.add_items(X)
    return fast, slow


def _assert_same_graph(a: HnswIndex, b: HnswIndex):
    assert len(a) == len(b)
    assert a.entry_point == b.entry_point
    assert a.max_level == b.max_level
    np.testing.assert_array_equal(a._node_level[: len(a)], b._node_level[: len(b)])
    for lv in range(a.max_level + 1):
        np.testing.assert_array_equal(a._cnts[lv][: len(a)], b._cnts[lv][: len(b)])
        for node in a.nodes_at_level(lv).tolist():
            np.testing.assert_array_equal(
                a._nbrs[lv][node, : a._cnts[lv][node]],
                b._nbrs[lv][node, : b._cnts[lv][node]],
            )


needs_native_build = pytest.mark.skipif(
    hnsw_native.native_build_for("l2", 32) is None,
    reason="compiled insert path unavailable on this machine",
)


@pytest.fixture
def hnsw_native_state():
    """Snapshot/restore the hnsw loader's sticky module state."""
    state = (
        hnsw_native._lib,
        hnsw_native._lib_state,
        dict(hnsw_native._checked),
        dict(hnsw_native._checked_cdist),
    )
    yield
    (
        hnsw_native._lib,
        hnsw_native._lib_state,
    ) = state[0], state[1]
    hnsw_native._checked = state[2]
    hnsw_native._checked_cdist = state[3]


@pytest.fixture
def pq_native_state():
    state = (pq_native._lib, pq_native._lib_state, pq_native._scan_checked)
    yield
    pq_native._lib, pq_native._lib_state, pq_native._scan_checked = state


class TestNativeBuild:
    @needs_native_build
    def test_bulk_build_identical(self, corpus, params):
        fast, slow = _build_pair(corpus, params)
        assert fast.native_build_active and not slow.native_build_active
        _assert_same_graph(fast, slow)
        assert fast.n_dist_evals == slow.n_dist_evals
        assert fast.n_shrink_ops == slow.n_shrink_ops

    @needs_native_build
    def test_incremental_add_identical(self, corpus, params):
        fast = HnswIndex(dim=32, params=params, capacity=len(corpus))
        slow = HnswIndex(dim=32, params=params, capacity=len(corpus))
        slow._native_build = None
        slow._native = None
        for i in range(200):
            assert fast.add(corpus[i], ext_id=1000 + i) == i
            slow.add(corpus[i], ext_id=1000 + i)
        _assert_same_graph(fast, slow)
        assert fast.n_dist_evals == slow.n_dist_evals
        np.testing.assert_array_equal(fast._ext[:200], slow._ext[:200])

    @needs_native_build
    def test_search_after_native_build_identical(self, corpus, params):
        fast, slow = _build_pair(corpus, params)
        for q in corpus[:20]:
            df, idf = fast.knn_search(q, 5)
            ds, ids = slow.knn_search(q, 5)
            np.testing.assert_array_equal(idf, ids)
            np.testing.assert_array_equal(df, ds)

    @needs_native_build
    def test_simple_selection_identical(self, corpus):
        params = HnswParams(M=8, ef_construction=40, seed=3, select_heuristic=False)
        fast, slow = _build_pair(corpus, params)
        _assert_same_graph(fast, slow)
        assert fast.n_dist_evals == slow.n_dist_evals

    @needs_native_build
    def test_save_load_byte_identical(self, corpus, params, tmp_path):
        fast, slow = _build_pair(corpus, params)
        pf, ps = str(tmp_path / "fast.npz"), str(tmp_path / "slow.npz")
        fast.save(pf)
        slow.save(ps)
        with np.load(pf) as a, np.load(ps) as b:
            assert sorted(a.files) == sorted(b.files)
            for name in a.files:
                assert a[name].tobytes() == b[name].tobytes(), name
        loaded = HnswIndex.load(pf)
        _assert_same_graph(loaded, slow)


class TestBitIdentityGates:
    def test_forced_cdist_selfcheck_failure_falls_back(
        self, corpus, params, monkeypatch, hnsw_native_state
    ):
        """A failing double-kernel self-check disables ONLY the build path;
        construction still succeeds on python (search native untouched)."""
        monkeypatch.setattr(hnsw_native, "_selfcheck_cdist", lambda lib, s: False)
        idx = HnswIndex(dim=32, params=params, capacity=len(corpus))
        assert not idx.native_build_active
        idx.add_items(corpus)
        assert len(idx) == len(corpus)
        d, ids = idx.knn_search(corpus[0], 5)
        assert ids[0] == 0

    def test_forced_einsum_selfcheck_failure_disables_both(
        self, params, monkeypatch, hnsw_native_state
    ):
        monkeypatch.setattr(hnsw_native, "_selfcheck", lambda lib, s: False)
        idx = HnswIndex(dim=32, params=params)
        assert not idx.native_search_active
        assert not idx.native_build_active

    def test_no_native_env_covers_build_and_search(
        self, corpus, params, monkeypatch, hnsw_native_state
    ):
        monkeypatch.setenv("REPRO_HNSW_NO_NATIVE", "1")
        monkeypatch.setattr(hnsw_native, "_lib", None)
        monkeypatch.setattr(hnsw_native, "_lib_state", "unloaded")
        idx = HnswIndex(dim=32, params=params, capacity=len(corpus))
        assert not idx.native_search_active
        assert not idx.native_build_active
        idx.add_items(corpus[:100])
        assert len(idx) == 100

    def test_extend_candidates_stays_on_python(self, params):
        p = HnswParams(M=8, ef_construction=40, seed=3, extend_candidates=True)
        idx = HnswIndex(dim=32, params=p)
        assert not idx.native_build_active


class TestPqScanGates:
    def test_scan_matches_numpy_fallback(self, corpus):
        pq = ProductQuantizer(8, 64, seed=1).fit(corpus)
        table = pq.adc_table(corpus[0])
        ct = transpose_codes(pq.encode(corpus))
        np.testing.assert_array_equal(adc_scan(table, ct), _adc_scan_numpy(table, ct))

    def test_no_native_env_forces_numpy(self, corpus, monkeypatch, pq_native_state):
        pq = ProductQuantizer(4, 32, seed=1).fit(corpus)
        codes = pq.encode(corpus)
        with_native = pq.adc_distances(corpus[1], codes)
        monkeypatch.setenv("REPRO_PQ_NO_NATIVE", "1")
        monkeypatch.setattr(pq_native, "_lib", None)
        monkeypatch.setattr(pq_native, "_lib_state", "unloaded")
        monkeypatch.setattr(pq_native, "_scan_checked", None)
        assert pq_native.native_adc_scan() is None
        without = pq.adc_distances(corpus[1], codes)
        np.testing.assert_array_equal(with_native, without)

    def test_ivfpq_results_native_independent(self, corpus, monkeypatch, pq_native_state):
        idx = IVFPQIndex(n_cells=8, n_subspaces=4, n_centroids=32, seed=2, n_probe=3)
        idx.fit(corpus)
        d1, i1 = idx.knn_search(corpus[5], 5)
        monkeypatch.setenv("REPRO_PQ_NO_NATIVE", "1")
        monkeypatch.setattr(pq_native, "_lib", None)
        monkeypatch.setattr(pq_native, "_lib_state", "unloaded")
        monkeypatch.setattr(pq_native, "_scan_checked", None)
        d2, i2 = idx.knn_search(corpus[5], 5)
        np.testing.assert_array_equal(i1, i2)
        np.testing.assert_array_equal(d1, d2)
