"""Tests for per-query latency measurement."""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import sample_queries, sift_like
from repro.eval import latency_stats
from repro.hnsw import HnswParams


@pytest.fixture(scope="module")
def system_and_queries():
    X = sift_like(1200, dim=32, seed=81)
    Q = sample_queries(X, 60, noise_scale=0.05, seed=82)
    base = dict(
        n_cores=4, cores_per_node=2, k=5,
        hnsw=HnswParams(M=8, ef_construction=40, seed=81), n_probe=2, seed=81,
    )
    return X, Q, base


class TestQueryLatencies:
    def test_two_sided_reports_latencies(self, system_and_queries):
        X, Q, base = system_and_queries
        ann = DistributedANN(SystemConfig(**base, one_sided=False))
        ann.fit(X)
        _, _, rep = ann.query(Q)
        lat = rep.query_latencies
        assert lat is not None and lat.shape == (len(Q),)
        assert np.all(np.isfinite(lat))
        assert np.all(lat > 0)
        # no query can finish after the batch
        assert lat.max() <= rep.total_seconds + 1e-12

    def test_one_sided_has_no_latencies(self, system_and_queries):
        X, Q, base = system_and_queries
        ann = DistributedANN(SystemConfig(**base, one_sided=True))
        ann.fit(X)
        _, _, rep = ann.query(Q)
        assert rep.query_latencies is None

    def test_adaptive_mode_latencies(self, system_and_queries):
        X, Q, base = system_and_queries
        ann = DistributedANN(
            SystemConfig(**base, routing="adaptive", one_sided=False)
        )
        ann.fit(X)
        _, _, rep = ann.query(Q)
        assert np.all(np.isfinite(rep.query_latencies))

    def test_latencies_ordered_with_dispatch(self, system_and_queries):
        """Later-dispatched queries cannot, on average, finish earlier than
        the earliest ones by more than the pipeline depth."""
        X, Q, base = system_and_queries
        ann = DistributedANN(SystemConfig(**base, one_sided=False))
        ann.fit(X)
        _, _, rep = ann.query(Q)
        lat = rep.query_latencies
        # first query completes before the whole batch does
        assert lat[0] < rep.total_seconds


class TestLatencyStats:
    def test_percentile_ordering(self):
        rng = np.random.default_rng(0)
        s = latency_stats(rng.exponential(1e-3, size=500))
        assert s.p50 <= s.p90 <= s.p99 <= s.p999 <= s.max
        assert s.n == 500

    def test_as_row_includes_p999(self):
        s = latency_stats(np.linspace(1e-4, 1e-2, 1000))
        assert s.as_row() == (s.n, s.mean, s.p50, s.p90, s.p99, s.p999, s.max)
        # p999 sits strictly inside the p99..max tail on a spread vector
        assert s.p99 < s.p999 < s.max

    def test_nans_dropped(self):
        s = latency_stats(np.array([1.0, np.nan, 3.0]))
        assert s.n == 2 and s.max == 3.0

    def test_all_nan_raises(self):
        with pytest.raises(ValueError, match="one-sided"):
            latency_stats(np.array([np.nan, np.nan]))

    def test_none_raises_with_guidance(self):
        with pytest.raises(ValueError, match="one_sided=False"):
            latency_stats(None)
