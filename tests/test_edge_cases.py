"""Edge cases and failure handling across the system."""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, sift_like
from repro.eval import recall_at_k
from repro.hnsw import HnswIndex, HnswParams, graph_stats
from repro.simmpi import Simulation
from repro.simmpi.errors import SimError


class TestSingleCoreSystem:
    def test_n_cores_one_is_a_plain_index(self):
        X = sift_like(300, dim=16, seed=90)
        ann = DistributedANN(
            SystemConfig(
                n_cores=1, cores_per_node=1, k=5,
                hnsw=HnswParams(M=8, ef_construction=40, seed=90), n_probe=1, seed=90,
            )
        )
        ann.fit(X)
        gt_d, gt_i = brute_force_knn(X, X[:10], 5)
        D, I, rep = ann.query(X[:10], k=5)
        assert recall_at_k(I, gt_i, gt_d, D) >= 0.95
        assert rep.mean_fanout == 1.0


class TestSmallK:
    def test_k_one(self):
        X = sift_like(400, dim=16, seed=91)
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=1,
                hnsw=HnswParams(M=8, ef_construction=30, seed=91), n_probe=4, seed=91,
            )
        )
        ann.fit(X)
        D, I, _ = ann.query(X[:20], k=1)
        assert (I[:, 0] == np.arange(20)).all()
        assert np.allclose(D[:, 0], 0.0, atol=1e-4)

    def test_k_exceeds_probed_points(self):
        """k larger than the points reachable via n_probe partitions:
        results are padded, not crashed."""
        X = sift_like(64, dim=16, seed=92)
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=5,
                hnsw=HnswParams(M=4, ef_construction=20, seed=92), n_probe=1, seed=92,
            )
        )
        ann.fit(X)
        D, I, _ = ann.query(X[:3], k=40)
        assert I.shape == (3, 40)
        assert (I >= 0).sum(axis=1).min() >= 10  # got the local partition
        assert (I[:, -1] == -1).all()  # padded tail


class TestSingleQuery:
    def test_batch_of_one(self):
        X = sift_like(200, dim=16, seed=93)
        ann = DistributedANN(
            SystemConfig(
                n_cores=2, cores_per_node=2, k=3,
                hnsw=HnswParams(M=4, ef_construction=20, seed=93), n_probe=2, seed=93,
            )
        )
        ann.fit(X)
        D, I, rep = ann.query(X[:1], k=3)
        assert rep.n_queries == 1 and I.shape == (1, 3)


class TestHnswFlatMode:
    def test_flat_graph_has_single_layer(self):
        X = sift_like(500, dim=16, seed=94)
        idx = HnswIndex(dim=16, params=HnswParams(M=8, ef_construction=40, flat=True, seed=94))
        idx.add_items(X)
        assert idx.max_level == 0
        s = graph_stats(idx)
        assert len(s["layers"]) == 1
        assert s["layers"][0]["n_nodes"] == 500

    def test_flat_search_still_accurate(self):
        X = sift_like(500, dim=16, seed=95)
        idx = HnswIndex(dim=16, params=HnswParams(M=8, ef_construction=40, flat=True, seed=95))
        idx.add_items(X)
        gt_d, gt_i = brute_force_knn(X, X[:15], 5)
        hits = sum(
            len(set(idx.knn_search(X[i], 5, ef=40)[1]) & set(gt_i[i])) for i in range(15)
        )
        assert hits / 75 >= 0.9


class TestEngineErrorContext:
    def test_proc_exception_annotated(self):
        sim = Simulation()

        def bad(ctx):
            yield from ctx.compute(1.5)
            raise KeyError("partition 42")

        sim.add_proc(bad, node=3, name="worker_n3_t0")
        with pytest.raises(SimError, match=r"worker_n3_t0.*node=3.*t=1\.5.*partition 42"):
            sim.run()

    def test_sim_errors_pass_through_unwrapped(self):
        sim = Simulation()

        def bad(ctx):
            yield from ctx.compute(-1.0)

        sim.add_proc(bad)
        with pytest.raises(SimError, match="negative"):
            sim.run()


class TestDuplicateAndDegenerate:
    def test_all_identical_points_system(self):
        X = np.ones((256, 8), dtype=np.float32)
        ann = DistributedANN(
            SystemConfig(
                n_cores=4, cores_per_node=2, k=3,
                hnsw=HnswParams(M=4, ef_construction=20, seed=96), n_probe=4, seed=96,
            )
        )
        ann.fit(X)
        D, I, _ = ann.query(X[:5], k=3)
        assert np.allclose(D[np.isfinite(D)], 0.0, atol=1e-6)

    def test_tiny_partitions(self):
        """More cores than points-per-partition can comfortably hold."""
        X = sift_like(64, dim=8, seed=97)
        ann = DistributedANN(
            SystemConfig(
                n_cores=16, cores_per_node=4, k=2,
                hnsw=HnswParams(M=4, ef_construction=10, seed=97), n_probe=4, seed=97,
            )
        )
        report = ann.fit(X)
        assert sum(report.partition_sizes) == 64
        D, I, _ = ann.query(X[:4], k=2)
        assert (I[:, 0] >= 0).all()
