"""Integration tests for the full distributed system (fit + query).

One session-scoped fitted system is shared across read-only tests; mode
comparisons (one-sided vs two-sided, replication, owner strategy) build
their own small systems.
"""

import numpy as np
import pytest

from repro.core import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import recall_at_k
from repro.hnsw import HnswParams


HNSW = HnswParams(M=8, ef_construction=40, seed=2)


@pytest.fixture(scope="module")
def corpus():
    X = sift_like(2000, dim=32, seed=21)
    Q = sample_queries(X, 50, noise_scale=0.05, seed=22)
    gt_d, gt_i = brute_force_knn(X, Q, 10)
    return X, Q, gt_d, gt_i


@pytest.fixture(scope="module")
def fitted(corpus):
    X, *_ = corpus
    ann = DistributedANN(
        SystemConfig(n_cores=8, cores_per_node=4, k=10, hnsw=HNSW, n_probe=3, seed=5)
    )
    report = ann.fit(X)
    return ann, report


class TestFit:
    def test_partitions_balanced(self, fitted):
        _, report = fitted
        assert all(s == 250 for s in report.partition_sizes)

    def test_build_phases_positive(self, fitted):
        _, report = fitted
        assert report.total_seconds > 0
        assert report.hnsw_seconds > 0
        assert report.vptree_seconds > 0
        assert report.total_seconds >= report.hnsw_seconds

    def test_partitions_hold_real_indexes(self, fitted):
        ann, _ = fitted
        for p in ann.partitions.values():
            assert p.index is not None
            assert len(p.index) == p.n_points

    def test_router_has_all_partitions(self, fitted):
        ann, _ = fitted
        assert sorted(ann.router.partitions()) == list(range(8))

    def test_query_before_fit_raises(self):
        ann = DistributedANN(SystemConfig(n_cores=2, cores_per_node=2))
        with pytest.raises(RuntimeError, match="fit"):
            ann.query(np.zeros((1, 8), dtype=np.float32) + 1)

    def test_too_few_points_raises(self):
        ann = DistributedANN(SystemConfig(n_cores=8, cores_per_node=4))
        with pytest.raises(ValueError, match="partitions"):
            ann.fit(np.random.default_rng(0).normal(size=(4, 8)).astype(np.float32))


class TestQuery:
    def test_recall_reasonable(self, fitted, corpus):
        ann, _ = fitted
        X, Q, gt_d, gt_i = corpus
        D, I, rep = ann.query(Q)
        assert recall_at_k(I, gt_i, gt_d, D) >= 0.85

    def test_report_consistency(self, fitted, corpus):
        ann, _ = fitted
        X, Q, *_ = corpus
        D, I, rep = ann.query(Q)
        assert rep.n_queries == len(Q)
        assert rep.tasks == int(rep.dispatch_counts.sum())
        assert rep.mean_fanout == pytest.approx(3.0)  # n_probe partitions each
        assert rep.total_seconds > 0
        assert 0.0 <= rep.comm_fraction <= 1.0

    def test_results_sorted_and_padded(self, fitted, corpus):
        ann, _ = fitted
        X, Q, *_ = corpus
        D, I, _ = ann.query(Q, k=10)
        assert D.shape == (len(Q), 10)
        valid = D[np.isfinite(D)]
        for row in D:
            finite = row[np.isfinite(row)]
            assert np.all(np.diff(finite) >= -1e-12)

    def test_dim_mismatch_raises(self, fitted):
        ann, _ = fitted
        with pytest.raises(ValueError, match="-d"):
            ann.query(np.zeros((2, 7), dtype=np.float32) + 1)

    def test_distances_are_true_distances(self, fitted, corpus):
        """Returned distances must equal the real L2 distance to the
        returned id (no approximation in the reported distances)."""
        ann, _ = fitted
        X, Q, *_ = corpus
        D, I, _ = ann.query(Q[:10])
        for qi in range(10):
            for j in range(10):
                if I[qi, j] >= 0:
                    ref = np.linalg.norm(
                        X[I[qi, j]].astype(np.float64) - Q[qi].astype(np.float64)
                    )
                    assert D[qi, j] == pytest.approx(ref, rel=1e-4)


class TestResultPathEquivalence:
    """One-sided RMA accumulation and two-sided master merging must produce
    bit-identical k-NN results (the combiner is shared; the transport is
    not)."""

    def test_one_sided_equals_two_sided(self, corpus):
        X, Q, *_ = corpus
        base = dict(n_cores=4, cores_per_node=2, k=10, hnsw=HNSW, n_probe=2, seed=7)
        a = DistributedANN(SystemConfig(**base, one_sided=True))
        a.fit(X)
        Da, Ia, _ = a.query(Q)
        b = DistributedANN(SystemConfig(**base, one_sided=False))
        b.fit(X)
        Db, Ib, _ = b.query(Q)
        assert np.array_equal(Ia, Ib)
        assert np.allclose(Da, Db, equal_nan=True)

    def test_one_sided_master_cheaper(self, corpus):
        """The master's own busy time must drop with one-sided results —
        the optimisation's purpose (§IV-C1)."""
        X, Q, *_ = corpus
        base = dict(n_cores=4, cores_per_node=2, k=10, hnsw=HNSW, n_probe=2, seed=7)
        a = DistributedANN(SystemConfig(**base, one_sided=True))
        a.fit(X)
        _, _, ra = a.query(Q)
        b = DistributedANN(SystemConfig(**base, one_sided=False))
        b.fit(X)
        _, _, rb = b.query(Q)
        # CPU components only — blocked wait is idle time, and an idle
        # master is precisely what one-sided accumulation buys
        def cpu(br):
            return br["compute"] + br["send"] + br["recv"] + br["poll"]

        assert cpu(ra.master_breakdown) < cpu(rb.master_breakdown)


class TestAdaptiveRouting:
    def test_adaptive_recall_at_least_approx(self, corpus):
        X, Q, gt_d, gt_i = corpus
        base = dict(n_cores=8, cores_per_node=4, k=10, hnsw=HNSW, seed=3)
        approx = DistributedANN(SystemConfig(**base, n_probe=1))
        approx.fit(X)
        _, Ia, _ = approx.query(Q)
        adaptive = DistributedANN(
            SystemConfig(**base, routing="adaptive", one_sided=False)
        )
        adaptive.fit(X)
        Dd, Id, rep = adaptive.query(Q)
        ra = recall_at_k(Ia, gt_i)
        rd = recall_at_k(Id, gt_i, gt_d, Dd)
        assert rd >= ra
        assert rd >= 0.95  # exact coverage + good local searches
        assert rep.mean_fanout > 1.0


class TestReplication:
    def test_replicas_resident_on_nodes(self, corpus):
        X, *_ = corpus
        cfg = SystemConfig(
            n_cores=8, cores_per_node=2, k=10, hnsw=HNSW, replication_factor=3, seed=5
        )
        ann = DistributedANN(cfg)
        ann.fit(X)
        for p in range(8):
            for core in ann._build.workgroups.cores_for_partition(p):
                node = cfg.node_of_core(core)
                assert p in ann._build.node_stores[node]

    def test_replication_spreads_load(self, corpus):
        """Skewed queries: the dispatch-count spread must narrow with r
        (Fig. 4b's claim)."""
        X, *_ = corpus
        # all queries near one point => all route to the same partitions
        hot = sample_queries(X[:50], 100, noise_scale=0.01, seed=1)
        spreads = {}
        for r in (1, 3):
            cfg = SystemConfig(
                n_cores=8, cores_per_node=2, k=10, hnsw=HNSW,
                replication_factor=r, n_probe=2, seed=5,
            )
            ann = DistributedANN(cfg)
            ann.fit(X)
            _, _, rep = ann.query(hot)
            counts = rep.dispatch_counts
            spreads[r] = counts.max() - counts.min()
        assert spreads[3] < spreads[1]

    def test_replication_same_results(self, corpus):
        X, Q, *_ = corpus
        base = dict(n_cores=8, cores_per_node=4, k=10, hnsw=HNSW, n_probe=2, seed=5)
        a = DistributedANN(SystemConfig(**base, replication_factor=1))
        a.fit(X)
        _, Ia, _ = a.query(Q)
        b = DistributedANN(SystemConfig(**base, replication_factor=4))
        b.fit(X)
        _, Ib, _ = b.query(Q)
        assert np.array_equal(Ia, Ib)


class TestMultipleOwner:
    def test_same_results_as_master(self, corpus):
        X, Q, *_ = corpus
        base = dict(
            n_cores=4, cores_per_node=2, k=10, hnsw=HNSW, n_probe=2,
            one_sided=False, seed=9,
        )
        m = DistributedANN(SystemConfig(**base, owner_strategy="master"))
        m.fit(X)
        _, Im, _ = m.query(Q)
        o = DistributedANN(SystemConfig(**base, owner_strategy="multiple"))
        o.fit(X)
        _, Io, rep = o.query(Q)
        assert np.array_equal(Im, Io)
        assert rep.tasks == len(Q) * 2


class TestModeledSearcher:
    def test_modeled_mode_runs_at_scale(self, corpus):
        X, Q, *_ = corpus
        cfg = SystemConfig(
            n_cores=64, cores_per_node=8, k=10, hnsw=HnswParams(M=16),
            searcher="modeled", modeled_partition_points=1_000_000,
            modeled_sample_points=64, n_probe=2, seed=3,
        )
        ann = DistributedANN(cfg)
        br = ann.fit(X)
        D, I, rep = ann.query(Q[:20])
        assert rep.n_queries == 20
        # virtual times reflect million-point partitions, not the real 31
        assert br.hnsw_seconds > 1.0
        assert rep.total_seconds > 0
        # results come from real subsamples: ids must be valid dataset ids
        valid = I[I >= 0]
        assert valid.size > 0 and valid.max() < len(X)

    def test_modeled_partitions_have_samples_not_indexes(self, corpus):
        X, *_ = corpus
        cfg = SystemConfig(
            n_cores=4, cores_per_node=2, searcher="modeled",
            modeled_sample_points=16, hnsw=HNSW, seed=3,
        )
        ann = DistributedANN(cfg)
        ann.fit(X)
        for p in ann.partitions.values():
            assert p.index is None
            assert p.sample is not None
            assert len(p.sample[1]) == 16


class TestDeterminism:
    def test_fit_and_query_reproducible(self, corpus):
        X, Q, *_ = corpus
        cfg = SystemConfig(n_cores=4, cores_per_node=2, k=10, hnsw=HNSW, seed=13)
        a = DistributedANN(cfg)
        ra = a.fit(X)
        Da, Ia, sa = a.query(Q)
        b = DistributedANN(cfg)
        rb = b.fit(X)
        Db, Ib, sb = b.query(Q)
        assert ra.total_seconds == rb.total_seconds
        assert np.array_equal(Ia, Ib)
        assert sa.total_seconds == sb.total_seconds
        assert np.array_equal(sa.dispatch_counts, sb.dispatch_counts)
