"""Edge cases of the multiple-owner strategy."""

import numpy as np

from repro.core import DistributedANN, SystemConfig
from repro.datasets import sample_queries, sift_like
from repro.hnsw import HnswParams


def make(owner_queries_fewer_than_nodes: bool):
    X = sift_like(600, dim=16, seed=58)
    n_q = 3 if owner_queries_fewer_than_nodes else 24
    Q = sample_queries(X, n_q, noise_scale=0.05, seed=59)
    ann = DistributedANN(
        SystemConfig(
            n_cores=8,
            cores_per_node=2,  # 4 nodes
            k=5,
            hnsw=HnswParams(M=8, ef_construction=30, seed=58),
            n_probe=2,
            one_sided=False,
            owner_strategy="multiple",
            seed=58,
        )
    )
    ann.fit(X)
    return ann, Q


class TestMultipleOwnerEdges:
    def test_fewer_queries_than_owner_nodes(self):
        """Some owners have zero queries; they must still join the final
        barrier and shutdown broadcast without deadlocking."""
        ann, Q = make(owner_queries_fewer_than_nodes=True)
        D, I, rep = ann.query(Q)
        assert rep.n_queries == 3
        assert (I[:, 0] >= 0).all()

    def test_every_query_answered_once(self):
        ann, Q = make(owner_queries_fewer_than_nodes=False)
        D, I, rep = ann.query(Q)
        assert np.isfinite(D[:, 0]).all()
        assert rep.tasks == len(Q) * 2  # n_probe tasks per query

    def test_deterministic(self):
        a_ann, Q = make(False)
        _, Ia, ra = a_ann.query(Q)
        b_ann, _ = make(False)
        _, Ib, rb = b_ann.query(Q)
        assert np.array_equal(Ia, Ib)
        assert ra.total_seconds == rb.total_seconds
