"""Unit tests for the complete KD-tree baseline system (Table III's rival)."""

import numpy as np
import pytest

from repro.core import SystemConfig
from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import recall_at_k
from repro.kdtree import KDBaselineSystem


@pytest.fixture(scope="module")
def corpus():
    X = sift_like(1200, dim=24, seed=55)
    Q = sample_queries(X, 30, noise_scale=0.05, seed=56)
    gt_d, gt_i = brute_force_knn(X, Q, 8)
    return X, Q, gt_d, gt_i


@pytest.fixture(scope="module")
def fitted(corpus):
    X, *_ = corpus
    cfg = SystemConfig(n_cores=4, cores_per_node=2, k=8, seed=55)
    kd = KDBaselineSystem(cfg, leaf_size=16)
    kd.fit(X)
    return kd


class TestKDBaseline:
    def test_results_are_exact(self, fitted, corpus):
        X, Q, gt_d, gt_i = corpus
        D, I, rep = fitted.query(Q)
        assert recall_at_k(I, gt_i, gt_d, D) == 1.0
        # distances exact too
        assert np.allclose(D, gt_d, atol=1e-4)

    def test_routing_forced_adaptive_two_sided(self):
        cfg = SystemConfig(n_cores=4, cores_per_node=2, routing="approx", one_sided=True)
        kd = KDBaselineSystem(cfg)
        assert kd.config.routing == "adaptive"
        assert kd.config.one_sided is False

    def test_build_time_positive(self, fitted):
        assert fitted.build_seconds > 0

    def test_query_before_fit_raises(self):
        kd = KDBaselineSystem(SystemConfig(n_cores=2, cores_per_node=2))
        with pytest.raises(RuntimeError, match="fit"):
            kd.query(np.ones((1, 8), dtype=np.float32))

    def test_dim_mismatch_raises(self, fitted):
        with pytest.raises(ValueError, match="-d"):
            fitted.query(np.ones((1, 7), dtype=np.float32))

    def test_too_few_points_raises(self):
        kd = KDBaselineSystem(SystemConfig(n_cores=8, cores_per_node=4))
        with pytest.raises(ValueError, match="partitions"):
            kd.fit(np.ones((4, 8), dtype=np.float32) + np.arange(8))

    def test_fanout_explodes_in_high_dim(self, fitted, corpus):
        """The baseline's Achilles heel: exact routing visits most
        partitions at 24-d (vs the VP system's fixed n_probe)."""
        X, Q, *_ = corpus
        _, _, rep = fitted.query(Q)
        assert rep.mean_fanout > 0.5 * 4

    def test_work_scale_multiplies_search_cost(self, corpus):
        X, Q, *_ = corpus
        cfg = SystemConfig(n_cores=4, cores_per_node=2, k=8, seed=55)
        plain = KDBaselineSystem(cfg, leaf_size=16)
        plain.fit(X)
        _, _, rep1 = plain.query(Q)
        scaled = KDBaselineSystem(cfg, leaf_size=16, work_scale=50.0)
        scaled.fit(X)
        _, _, rep50 = scaled.query(Q)
        assert rep50.total_seconds > 10 * rep1.total_seconds
