"""Unit tests for brute-force ground truth."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn


class TestBruteForce:
    def test_matches_naive_argsort(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(300, 12)).astype(np.float32)
        Q = rng.normal(size=(7, 12)).astype(np.float32)
        d, i = brute_force_knn(X, Q, 5)
        ref = np.linalg.norm(
            X.astype(np.float64)[None, :, :] - Q.astype(np.float64)[:, None, :], axis=2
        )
        for qi in range(7):
            order = np.lexsort((np.arange(len(X)), ref[qi]))[:5]
            assert np.array_equal(i[qi], order)
            assert np.allclose(d[qi], ref[qi][order], atol=1e-5)

    def test_blocking_does_not_change_result(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(500, 8)).astype(np.float32)
        Q = rng.normal(size=(9, 8)).astype(np.float32)
        d1, i1 = brute_force_knn(X, Q, 7, block_queries=3, block_points=64)
        d2, i2 = brute_force_knn(X, Q, 7)
        assert np.array_equal(i1, i2)
        assert np.allclose(d1, d2)

    def test_k_equals_n(self):
        X = np.eye(4, dtype=np.float32)
        Q = X[:1]
        d, i = brute_force_knn(X, Q, 4)
        assert i.shape == (1, 4)
        assert i[0, 0] == 0 and d[0, 0] == pytest.approx(0.0)

    def test_k_too_large_raises(self):
        X = np.eye(3, dtype=np.float32)
        with pytest.raises(ValueError, match="exceeds"):
            brute_force_knn(X, X, 4)

    def test_dim_mismatch_raises(self):
        X = np.zeros((5, 3), dtype=np.float32) + np.arange(3)
        Q = np.zeros((2, 4), dtype=np.float32) + np.arange(4)
        with pytest.raises(ValueError, match="dimension mismatch"):
            brute_force_knn(X, Q, 2)

    def test_other_metric(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(100, 6)).astype(np.float32)
        Q = rng.normal(size=(3, 6)).astype(np.float32)
        d, i = brute_force_knn(X, Q, 4, metric="l1")
        ref = np.abs(X.astype(np.float64)[None] - Q.astype(np.float64)[:, None]).sum(2)
        for qi in range(3):
            order = np.lexsort((np.arange(len(X)), ref[qi]))[:4]
            assert np.array_equal(i[qi], order)

    def test_distances_ascending(self):
        rng = np.random.default_rng(3)
        X = rng.normal(size=(50, 4)).astype(np.float32)
        d, _ = brute_force_knn(X, X[:5], 10)
        assert np.all(np.diff(d, axis=1) >= -1e-12)
