"""Coverage for small public surfaces not exercised elsewhere."""

import numpy as np
import pytest

from repro.hnsw import HnswIndex, HnswParams, graph_stats
from repro.simmpi import Comm, Simulation
from repro.simmpi.engine import payload_nbytes
from repro.simmpi.trace import ProcStats, aggregate_stats
from repro.vptree import PartitionRouter, VPTree


class TestProcStats:
    def test_aggregate_sums_all_fields(self):
        a = ProcStats(name="a")
        a.add_compute("search", 1.0)
        a.send_time = 0.1
        a.comm_wait = 0.5
        b = ProcStats(name="b")
        b.add_compute("route", 2.0)
        b.rma_time = 0.2
        agg = aggregate_stats([a, b])
        assert agg["compute"] == pytest.approx(3.0)
        assert agg["send"] == pytest.approx(0.1)
        assert agg["wait"] == pytest.approx(0.5)
        assert agg["rma"] == pytest.approx(0.2)

    def test_busy_and_comm_totals(self):
        s = ProcStats()
        s.add_compute("x", 1.0)
        s.recv_time = 0.25
        s.poll_time = 0.25
        assert s.comm_total == pytest.approx(0.5)
        assert s.busy_total == pytest.approx(1.5)

    def test_compute_kinds_accumulate(self):
        s = ProcStats()
        s.add_compute("search", 1.0)
        s.add_compute("search", 2.0)
        assert s.compute == {"search": 3.0}


class TestPayloadNbytes:
    def test_str_and_dict(self):
        assert payload_nbytes("hello") == 45
        d = {"k": np.zeros(10, dtype=np.float64)}
        assert payload_nbytes(d) > 80

    def test_nested_list(self):
        inner = np.zeros(100, dtype=np.float32)
        assert payload_nbytes([inner, inner]) > 2 * 400


class TestCommAccessors:
    def test_pid_and_mailbox_of_rank(self):
        sim = Simulation()

        def p(ctx):
            yield from ctx.compute(0)

        pids = [sim.add_proc(p, name=f"r{i}") for i in range(3)]
        comm = Comm(sim, pids)
        assert comm.pid_of_rank(1) == pids[1]
        assert comm.mailbox_of_rank(2) is sim.mailbox_of(pids[2])
        assert comm.size == 3


class TestStructureDiagnostics:
    @pytest.fixture(scope="class")
    def tree_and_router(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(300, 8)).astype(np.float32)
        tree = VPTree(X, leaf_size=32, seed=1)
        return tree, PartitionRouter.from_vptree(tree)

    def test_router_depth_positive(self, tree_and_router):
        tree, router = tree_and_router
        assert router.depth() >= 1
        assert router.depth() == tree.depth()

    def test_graph_stats_fields(self):
        rng = np.random.default_rng(2)
        X = rng.normal(size=(200, 8)).astype(np.float32)
        idx = HnswIndex(dim=8, params=HnswParams(M=6, ef_construction=30, seed=2))
        idx.add_items(X)
        s = graph_stats(idx)
        assert s["n_points"] == 200
        assert s["layers"][0]["n_nodes"] == 200
        assert s["layers"][0]["max_degree"] <= idx.params.M0
        # link-list shrinking makes the graph partially directed (as in
        # hnswlib); bound it below half of all links
        total_links = s["layers"][0]["mean_degree"] * s["layers"][0]["n_nodes"]
        assert s["layers"][0]["asymmetric_links"] <= 0.5 * total_links

    def test_vector_and_external_id_accessors(self):
        X = np.arange(20, dtype=np.float32).reshape(5, 4)
        idx = HnswIndex(dim=4, params=HnswParams(M=4, ef_construction=10))
        idx.add_items(X, ids=[10, 11, 12, 13, 14])
        assert idx.external_id(0) == 10
        assert np.array_equal(idx.vector(2), X[2])
        assert np.array_equal(idx.points, X)
