"""Unit tests for SystemConfig validation and derived topology."""

import pytest

from repro.core import SystemConfig
from repro.simmpi.errors import SimConfigError


class TestValidation:
    def test_defaults_valid(self):
        cfg = SystemConfig()
        assert cfg.n_cores == 8 and cfg.n_nodes == 2

    def test_bad_core_counts(self):
        with pytest.raises(SimConfigError):
            SystemConfig(n_cores=0)
        with pytest.raises(SimConfigError):
            SystemConfig(cores_per_node=0)

    def test_bad_k(self):
        with pytest.raises(SimConfigError):
            SystemConfig(k=0)

    def test_bad_routing_and_owner(self):
        with pytest.raises(SimConfigError):
            SystemConfig(routing="magic")
        with pytest.raises(SimConfigError):
            SystemConfig(owner_strategy="nobody")
        with pytest.raises(SimConfigError):
            SystemConfig(searcher="psychic")

    def test_replication_bounds(self):
        with pytest.raises(SimConfigError):
            SystemConfig(n_cores=4, replication_factor=5)
        with pytest.raises(SimConfigError):
            SystemConfig(replication_factor=0)
        SystemConfig(n_cores=4, replication_factor=4)  # boundary ok

    def test_adaptive_requires_two_sided(self):
        with pytest.raises(SimConfigError, match="two-sided"):
            SystemConfig(routing="adaptive", one_sided=True)
        SystemConfig(routing="adaptive", one_sided=False)

    def test_n_probe_positive(self):
        with pytest.raises(SimConfigError):
            SystemConfig(n_probe=0)

    def test_replica_selector_validated(self):
        with pytest.raises(SimConfigError, match="replica_selector"):
            SystemConfig(replica_selector="fastest")
        for name in ("primary", "round_robin", "least_loaded", "power_of_two_choices"):
            SystemConfig(replica_selector=name)

    def test_selector_needs_master_dispatch(self):
        with pytest.raises(SimConfigError, match="master"):
            SystemConfig(replica_selector="least_loaded", owner_strategy="multiple")
        SystemConfig(replica_selector="primary", owner_strategy="multiple")

    def test_skew_non_negative(self):
        with pytest.raises(SimConfigError, match="skew"):
            SystemConfig(skew=-0.5)
        SystemConfig(skew=1.2)


class TestDerived:
    def test_node_mapping(self):
        cfg = SystemConfig(n_cores=48, cores_per_node=24)
        assert cfg.n_nodes == 2
        assert cfg.node_of_core(0) == 0 and cfg.node_of_core(47) == 1
        with pytest.raises(SimConfigError):
            cfg.node_of_core(48)

    def test_partial_node(self):
        cfg = SystemConfig(n_cores=30, cores_per_node=24)
        assert cfg.n_nodes == 2

    def test_threads_per_node_capped_by_cores(self):
        cfg = SystemConfig(n_cores=2, cores_per_node=24)
        assert cfg.threads_per_node == 2

    def test_effective_ef_search_override(self):
        cfg = SystemConfig(ef_search=123)
        assert cfg.effective_ef_search == 123
        cfg2 = SystemConfig()
        assert cfg2.effective_ef_search == cfg2.hnsw.ef_search
