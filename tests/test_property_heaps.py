"""Property-based tests for heaps, KnnBuffer and merge_knn.

merge_knn is the combiner behind *both* result-return paths of the system;
its correctness against a sort-based oracle and its commutativity /
associativity are what make one-sided accumulation order-insensitive.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heaps import KnnBuffer, merge_knn

_pairs = st.lists(
    st.tuples(
        st.floats(0, 1e6, allow_nan=False, allow_infinity=False),
        st.integers(0, 1000),
    ),
    min_size=0,
    max_size=60,
)


@settings(max_examples=80, deadline=None)
@given(pairs=_pairs, k=st.integers(1, 12))
def test_knnbuffer_matches_sort_oracle(pairs, k):
    buf = KnnBuffer(k)
    for d, i in pairs:
        buf.offer(d, i)
    d, ids = buf.result()
    oracle = sorted(pairs)[:k]
    assert len(d) == min(k, len(pairs))
    # distances must match the k smallest (ids may differ only on exact ties)
    assert np.allclose(d, [p[0] for p in oracle])


@settings(max_examples=80, deadline=None)
@given(pairs=_pairs, k=st.integers(1, 12))
def test_knnbuffer_tau_is_kth_distance(pairs, k):
    buf = KnnBuffer(k)
    for d, i in pairs:
        buf.offer(d, i)
    if len(pairs) < k:
        assert buf.tau == float("inf")
    else:
        assert buf.tau == sorted(p[0] for p in pairs)[k - 1]


def _to_result(pairs):
    if not pairs:
        return np.empty(0), np.empty(0, dtype=np.int64)
    d = np.array([p[0] for p in pairs])
    i = np.array([p[1] for p in pairs], dtype=np.int64)
    return d, i


@settings(max_examples=80, deadline=None)
@given(a=_pairs, b=_pairs, k=st.integers(1, 10))
def test_merge_knn_commutative(a, b, k):
    r1 = merge_knn([_to_result(a), _to_result(b)], k)
    r2 = merge_knn([_to_result(b), _to_result(a)], k)
    assert np.array_equal(r1[1], r2[1])
    assert np.allclose(r1[0], r2[0])


@settings(max_examples=60, deadline=None)
@given(a=_pairs, b=_pairs, c=_pairs, k=st.integers(1, 10))
def test_merge_knn_associative(a, b, c, k):
    parts = [_to_result(x) for x in (a, b, c)]
    flat = merge_knn(parts, k)
    nested = merge_knn([merge_knn(parts[:2], k), parts[2]], k)
    assert np.array_equal(flat[1], nested[1])


@settings(max_examples=60, deadline=None)
@given(a=_pairs, k=st.integers(1, 10))
def test_merge_knn_idempotent(a, k):
    """Merging the same local result twice (replicated partitions answering
    one query twice) must change nothing."""
    r = _to_result(a)
    once = merge_knn([r], k)
    twice = merge_knn([r, r], k)
    assert np.array_equal(once[1], twice[1])
    assert np.allclose(once[0], twice[0])


@settings(max_examples=60, deadline=None)
@given(a=_pairs, k=st.integers(1, 10))
def test_merge_knn_output_sorted_unique(a, k):
    d, i = merge_knn([_to_result(a)], k)
    assert len(set(i.tolist())) == len(i)
    assert np.all(np.diff(d) >= -1e-12)
