"""Unit tests for Win.put / Win.get and Comm.scatter."""

import pytest

from repro.simmpi import Comm, Simulation, Window
from repro.simmpi.errors import SimError


class TestPutGet:
    def test_put_then_get_roundtrip(self):
        sim = Simulation()
        win = Window(0, 0, {0: None}, combine=lambda o, n: n)

        def owner(ctx):
            yield from ctx.compute(0)

        def origin(ctx):
            yield from win.lock_shared(ctx)
            yield from win.put(ctx, 0, {"payload": 7})
            value = yield from win.get(ctx, 0)
            yield from win.unlock(ctx)
            return value

        sim.add_proc(owner)
        pid = sim.add_proc(origin, node=1)
        out = sim.run()
        assert out.results[pid] == {"payload": 7}

    def test_put_without_lock_raises(self):
        sim = Simulation()
        win = Window(0, 0, [None], combine=lambda o, n: n)

        def origin(ctx):
            yield from win.put(ctx, 0, 1)

        sim.add_proc(origin)
        with pytest.raises(SimError, match="lock epoch"):
            sim.run()

    def test_get_without_lock_raises(self):
        sim = Simulation()
        win = Window(0, 0, [1], combine=lambda o, n: n)

        def origin(ctx):
            yield from win.get(ctx, 0)

        sim.add_proc(origin)
        with pytest.raises(SimError, match="lock epoch"):
            sim.run()

    def test_put_charges_origin_time(self):
        sim = Simulation()
        win = Window(0, 0, [None] * 10, combine=lambda o, n: n)

        def owner(ctx):
            yield from ctx.compute(0)

        def origin(ctx):
            yield from win.lock_shared(ctx)
            for i in range(10):
                yield from win.put(ctx, i, i)
            yield from win.unlock(ctx)
            return ctx.now

        sim.add_proc(owner)
        pid = sim.add_proc(origin, node=1)
        out = sim.run()
        assert out.results[pid] > 10 * 1.8e-6


class TestScatter:
    def test_scatter_distributes_by_rank(self):
        sim = Simulation()
        holder = {}

        def p(ctx):
            comm = holder["comm"]
            data = [r * 11 for r in range(comm.size)] if comm.rank(ctx) == 1 else None
            return (yield from comm.scatter(ctx, data, root=1))

        pids = [sim.add_proc(p, name=f"r{i}") for i in range(4)]
        holder["comm"] = Comm(sim, pids)
        out = sim.run()
        assert [out.results[p_] for p_ in pids] == [0, 11, 22, 33]

    def test_scatter_wrong_length_raises(self):
        sim = Simulation()
        holder = {}

        def p(ctx):
            comm = holder["comm"]
            data = [1, 2] if comm.rank(ctx) == 0 else None  # 3 ranks, 2 values
            yield from comm.scatter(ctx, data, root=0)

        pids = [sim.add_proc(p) for _ in range(3)]
        holder["comm"] = Comm(sim, pids)
        with pytest.raises(SimError, match="one value per rank"):
            sim.run()
