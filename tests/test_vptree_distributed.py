"""Integration tests for the distributed VP-tree construction (Algs 1-2)."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.simmpi import Comm, Simulation
from repro.vptree import PartitionRouter, distributed_build


def run_build_sim(X, P, seed=7, **kwargs):
    chunks = np.array_split(np.arange(len(X)), P)
    sim = Simulation()
    holder = {}

    def program(ctx):
        comm = holder["comm"]
        r = comm.rank(ctx)
        return (
            yield from distributed_build(ctx, comm, X[chunks[r]], chunks[r], seed=seed, **kwargs)
        )

    pids = [sim.add_proc(program, node=r // 4, name=f"rank{r}") for r in range(P)]
    holder["comm"] = Comm(sim, pids)
    out = sim.run()
    return [out.results[p] for p in pids], out


@pytest.fixture(scope="module")
def built8():
    X = sift_like(2048, dim=32, seed=4)
    results, out = run_build_sim(X, 8)
    return X, results, out


class TestPartitioning:
    def test_partitions_are_equal_sized(self, built8):
        X, results, _ = built8
        sizes = [len(r.ids) for r in results]
        assert all(s == len(X) // 8 for s in sizes)

    def test_partitions_cover_dataset_exactly(self, built8):
        X, results, _ = built8
        allids = np.sort(np.concatenate([r.ids for r in results]))
        assert np.array_equal(allids, np.arange(len(X)))

    def test_points_match_ids(self, built8):
        X, results, _ = built8
        for r in results:
            assert np.array_equal(r.points, X[r.ids])

    def test_ball_containment_invariant(self, built8):
        """Every point must respect each (vp, mu, side) on its rank's path."""
        X, results, _ = built8
        for res in results:
            pts = res.points.astype(np.float64)
            for vp, mu, went_left in res.path:
                d = np.sqrt(((pts - vp.astype(np.float64)) ** 2).sum(1))
                if went_left:
                    assert (d <= mu + 1e-3).all()
                else:
                    assert (d > mu - 1e-3).all()

    def test_path_depth_is_log2_p(self, built8):
        _, results, _ = built8
        assert all(len(r.path) == 3 for r in results)

    @pytest.mark.parametrize("P", [2, 3, 5])
    def test_non_power_of_two_worlds(self, P):
        X = sift_like(600, dim=16, seed=1)
        results, _ = run_build_sim(X, P)
        sizes = [len(r.ids) for r in results]
        assert sum(sizes) == len(X)
        assert max(sizes) - min(sizes) <= len(X) // (2 * P)  # near-equal

    def test_single_rank_world(self):
        X = sift_like(100, dim=8, seed=2)
        results, _ = run_build_sim(X, 1)
        assert len(results[0].ids) == 100
        assert results[0].path == []

    def test_deterministic_given_seed(self):
        X = sift_like(512, dim=16, seed=3)
        r1, o1 = run_build_sim(X, 4, seed=5)
        r2, o2 = run_build_sim(X, 4, seed=5)
        for a, b in zip(r1, r2):
            assert np.array_equal(a.ids, b.ids)
        assert o1.makespan == o2.makespan

    def test_non_metric_rejected(self):
        X = sift_like(64, dim=8, seed=0)
        with pytest.raises(Exception, match="true metric"):
            run_build_sim(X, 2, metric="sqeuclidean")

    def test_mismatched_ids_rejected(self):
        X = sift_like(64, dim=8, seed=0)
        sim = Simulation()
        holder = {}

        def program(ctx):
            return (
                yield from distributed_build(ctx, holder["comm"], X, np.arange(10))
            )

        pids = [sim.add_proc(program)]
        holder["comm"] = Comm(sim, pids)
        # the engine annotates proc failures with rank/time context
        from repro.simmpi.errors import SimError

        with pytest.raises(SimError, match="ids"):
            sim.run()


class TestRouterAssembly:
    def test_router_from_paths(self, built8):
        _, results, _ = built8
        router = PartitionRouter.from_paths([r.path for r in results])
        assert router.n_partitions == 8
        assert sorted(router.partitions()) == list(range(8))

    def test_exact_routing_covers_true_neighbors(self, built8):
        X, results, _ = built8
        router = PartitionRouter.from_paths([r.path for r in results])
        Q = sample_queries(X, 15, noise_scale=0.05, seed=9)
        gt_d, gt_i = brute_force_knn(X, Q, 5)
        id2part = {int(i): r for r in range(8) for i in results[r].ids}
        for qi in range(len(Q)):
            parts = set(router.route_exact(Q[qi], float(gt_d[qi][-1]) * (1 + 1e-9)))
            need = {id2part[int(i)] for i in gt_i[qi]}
            assert need <= parts

    def test_work_scale_inflates_data_volume_terms_only(self):
        """work_scale multiplies the data-proportional phases (splitting
        distances, shuffles) but NOT the vantage-candidate tournament,
        whose cost is fixed by the algorithm's 100x100 constants."""
        X = sift_like(256, dim=16, seed=6)
        _, out1 = run_build_sim(X, 4, seed=1)
        _, out2 = run_build_sim(X, 4, seed=1, work_scale=100.0)

        def by_kind(out, kind):
            return sum(s.compute.get(kind, 0.0) for s in out.stats.values())

        assert by_kind(out2, "build_split") > 50 * by_kind(out1, "build_split")
        assert by_kind(out2, "build_shuffle") > 50 * by_kind(out1, "build_shuffle")
        # candidate tournament: scale raises the virtual sample floor to the
        # algorithm's constants but never multiplies beyond them
        assert by_kind(out2, "build_vp") <= 40 * by_kind(out1, "build_vp")
