"""Unit tests for workgroup replication (Alg. 5 bookkeeping)."""

import pytest

from repro.core.replication import Workgroups
from repro.simmpi.errors import SimConfigError


class TestWorkgroups:
    def test_group_membership_wraps(self):
        wg = Workgroups(4, 3)
        assert wg.cores_for_partition(0) == [0, 1, 2]
        assert wg.cores_for_partition(3) == [3, 0, 1]

    def test_r1_identity(self):
        wg = Workgroups(4, 1)
        for p in range(4):
            assert wg.cores_for_partition(p) == [p]
            assert wg.next_core(p) == p

    def test_round_robin_cycles(self):
        wg = Workgroups(5, 2)
        assert [wg.next_core(0) for _ in range(4)] == [0, 1, 0, 1]

    def test_independent_pointers_per_partition(self):
        wg = Workgroups(5, 2)
        wg.next_core(0)
        assert wg.next_core(1) == 1  # untouched by partition 0's pointer

    def test_inverse_mapping(self):
        wg = Workgroups(6, 3)
        for core in range(6):
            for p in wg.partitions_for_core(core):
                assert core in wg.cores_for_partition(p)

    def test_inverse_mapping_counts(self):
        wg = Workgroups(8, 3)
        # every core hosts exactly r partitions
        assert all(len(wg.partitions_for_core(c)) == 3 for c in range(8))

    def test_reset(self):
        wg = Workgroups(4, 2)
        wg.next_core(0)
        wg.reset()
        assert wg.next_core(0) == 0

    def test_invalid_args(self):
        with pytest.raises(SimConfigError):
            Workgroups(0, 1)
        with pytest.raises(SimConfigError):
            Workgroups(4, 5)
        with pytest.raises(SimConfigError):
            Workgroups(4, 0)
