"""Unit tests for workgroup replication (Alg. 5 bookkeeping)."""

import pytest

from repro.core.replication import Workgroups
from repro.simmpi.errors import SimConfigError


class TestWorkgroups:
    def test_group_membership_wraps(self):
        wg = Workgroups(4, 3)
        assert wg.cores_for_partition(0) == [0, 1, 2]
        assert wg.cores_for_partition(3) == [3, 0, 1]

    def test_r1_identity(self):
        wg = Workgroups(4, 1)
        for p in range(4):
            assert wg.cores_for_partition(p) == [p]
            assert wg.next_core(p) == p

    def test_round_robin_cycles(self):
        wg = Workgroups(5, 2)
        assert [wg.next_core(0) for _ in range(4)] == [0, 1, 0, 1]

    def test_independent_pointers_per_partition(self):
        wg = Workgroups(5, 2)
        wg.next_core(0)
        assert wg.next_core(1) == 1  # untouched by partition 0's pointer

    def test_inverse_mapping(self):
        wg = Workgroups(6, 3)
        for core in range(6):
            for p in wg.partitions_for_core(core):
                assert core in wg.cores_for_partition(p)

    def test_inverse_mapping_counts(self):
        wg = Workgroups(8, 3)
        # every core hosts exactly r partitions
        assert all(len(wg.partitions_for_core(c)) == 3 for c in range(8))

    def test_reset(self):
        wg = Workgroups(4, 2)
        wg.next_core(0)
        wg.reset()
        assert wg.next_core(0) == 0

    def test_invalid_args(self):
        with pytest.raises(SimConfigError):
            Workgroups(0, 1)
        with pytest.raises(SimConfigError):
            Workgroups(4, 5)
        with pytest.raises(SimConfigError):
            Workgroups(4, 0)


class TestSeededOffsets:
    def test_default_seed_starts_at_group_head(self):
        wg = Workgroups(6, 3)
        assert all(wg.next_core(p) == wg.cores_for_partition(p)[0] for p in range(6))

    def test_same_seed_same_sequence(self):
        a = Workgroups(8, 3, seed=11)
        b = Workgroups(8, 3, seed=11)
        seq_a = [a.next_core(p) for p in range(8) for _ in range(4)]
        seq_b = [b.next_core(p) for p in range(8) for _ in range(4)]
        assert seq_a == seq_b

    def test_different_seeds_desynchronize(self):
        a = Workgroups(32, 4, seed=1)
        b = Workgroups(32, 4, seed=2)
        assert [a.next_core(p) for p in range(32)] != [b.next_core(p) for p in range(32)]

    def test_seeded_picks_stay_in_workgroup(self):
        wg = Workgroups(10, 3, seed=99)
        for p in range(10):
            assert wg.next_core(p) in wg.cores_for_partition(p)

    def test_reset_restores_seeded_offsets(self):
        wg = Workgroups(8, 3, seed=7)
        first = [wg.next_core(p) for p in range(8)]
        wg.next_core(0)
        wg.reset()
        assert [wg.next_core(p) for p in range(8)] == first


class TestExclusion:
    def test_excluded_core_skipped(self):
        wg = Workgroups(4, 2)
        # group of partition 0 is [0, 1]; excluding 0 must pick 1
        assert wg.next_core(0, exclude={0}) == 1

    def test_exclusion_advances_pointer_past_pick(self):
        wg = Workgroups(4, 3)  # group of 0 is [0, 1, 2]
        assert wg.next_core(0, exclude={0}) == 1
        assert wg.next_core(0) == 2  # pointer moved past the excluded pick

    def test_whole_group_excluded_returns_none(self):
        wg = Workgroups(4, 2)
        assert wg.next_core(0, exclude={0, 1}) is None

    def test_none_leaves_pointer_unchanged(self):
        wg = Workgroups(4, 2)
        assert wg.next_core(0, exclude={0, 1}) is None
        assert wg.next_core(0) == 0


class TestDeterministicReplicaChoice:
    """next_core is a pure function of (seed, partition_id, exclude) and the
    partition's prior call history — the contract load balancing and
    failover replay rely on (see the next_core docstring)."""

    def test_replay_with_excludes_is_identical(self):
        a = Workgroups(8, 3, seed=5)
        b = Workgroups(8, 3, seed=5)
        script = [(0, ()), (0, {0}), (1, {2}), (0, ()), (7, {7, 0}), (1, ()), (0, {1})]
        assert [a.next_core(p, exclude=e) for p, e in script] == [
            b.next_core(p, exclude=e) for p, e in script
        ]

    def test_no_hidden_randomness_between_calls(self):
        # interleaving other partitions' calls never changes partition 0's cycle
        a = Workgroups(6, 2, seed=3)
        b = Workgroups(6, 2, seed=3)
        seq_a = [a.next_core(0) for _ in range(6)]
        seq_b = []
        for _ in range(6):
            b.next_core(3)
            seq_b.append(b.next_core(0))
            b.next_core(5, exclude={5})
        assert seq_a == seq_b

    def test_exclusion_does_not_consume_skipped_position(self):
        wg = Workgroups(4, 3)  # group of 0 is [0, 1, 2]
        assert wg.next_core(0, exclude={0}) == 1
        assert [wg.next_core(0) for _ in range(3)] == [2, 0, 1]
