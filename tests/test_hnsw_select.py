"""Unit tests for HNSW neighbor-selection strategies."""

import numpy as np
import pytest

from repro.hnsw.select import select_heuristic, select_simple


def cross_from_points(pts, cand_ids):
    sub = pts[cand_ids]
    diff = sub[:, None, :] - sub[None, :, :]
    return np.sqrt((diff**2).sum(-1))


class TestSelectSimple:
    def test_keeps_m_closest(self):
        cands = [(3.0, 3), (1.0, 1), (2.0, 2), (4.0, 4)]
        assert select_simple(cands, 2) == [(1.0, 1), (2.0, 2)]

    def test_fewer_candidates_than_m(self):
        cands = [(1.0, 1)]
        assert select_simple(cands, 5) == [(1.0, 1)]


class TestSelectHeuristic:
    def test_diversity_preferred_over_proximity(self):
        """Two near-duplicate close candidates: only one is kept; a farther
        candidate in another direction is kept instead."""
        q = np.zeros(2)
        pts = np.array(
            [[1.0, 0.0], [1.05, 0.0], [0.0, 3.0]], dtype=np.float64
        )  # two clones to the right, one up
        dq = np.sqrt((pts**2).sum(1))
        cands = sorted((float(dq[i]), i) for i in range(3))
        cross = cross_from_points(pts, np.arange(3))
        kept = select_heuristic(cands, 2, cross, keep_pruned=False)
        kept_ids = {c for _, c in kept}
        assert 0 in kept_ids and 2 in kept_ids and 1 not in kept_ids

    def test_keep_pruned_backfills(self):
        q = np.zeros(2)
        pts = np.array([[1.0, 0.0], [1.05, 0.0], [1.1, 0.0]], dtype=np.float64)
        dq = np.sqrt((pts**2).sum(1))
        cands = sorted((float(dq[i]), i) for i in range(3))
        cross = cross_from_points(pts, np.arange(3))
        no_backfill = select_heuristic(cands, 3, cross, keep_pruned=False)
        backfill = select_heuristic(cands, 3, cross, keep_pruned=True)
        assert len(no_backfill) == 1
        assert len(backfill) == 3

    def test_first_candidate_always_kept(self):
        pts = np.random.default_rng(0).normal(size=(10, 4))
        dq = np.sqrt((pts**2).sum(1))
        cands = sorted((float(dq[i]), i) for i in range(10))
        cross = cross_from_points(pts, np.arange(10))
        kept = select_heuristic(cands, 4, cross)
        assert kept[0] == cands[0]

    def test_result_bounded_by_m(self):
        pts = np.random.default_rng(1).normal(size=(20, 4))
        dq = np.sqrt((pts**2).sum(1))
        cands = sorted((float(dq[i]), i) for i in range(20))
        cross = cross_from_points(pts, np.arange(20))
        assert len(select_heuristic(cands, 5, cross)) <= 5

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="cross matrix"):
            select_heuristic([(1.0, 0)], 1, np.zeros((2, 2)))
