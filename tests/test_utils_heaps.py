"""Unit tests for bounded heaps and the k-NN merge reduction."""

import numpy as np
import pytest

from repro.utils.heaps import KnnBuffer, MaxHeap, MinHeap, merge_knn


class TestMinHeap:
    def test_pop_order_is_ascending(self):
        h = MinHeap([(3.0, 3), (1.0, 1), (2.0, 2)])
        assert h.pop() == (1.0, 1)
        assert h.pop() == (2.0, 2)
        assert h.pop() == (3.0, 3)

    def test_push_then_peek(self):
        h = MinHeap()
        h.push(5.0, 50)
        h.push(1.5, 15)
        assert h.peek() == (1.5, 15)
        assert len(h) == 2

    def test_bool_and_len(self):
        h = MinHeap()
        assert not h
        h.push(1.0, 1)
        assert h and len(h) == 1


class TestMaxHeap:
    def test_pop_order_is_descending(self):
        h = MaxHeap([(3.0, 3), (1.0, 1), (2.0, 2)])
        assert h.pop() == (3.0, 3)
        assert h.pop() == (2.0, 2)

    def test_max_dist_empty_is_inf(self):
        assert MaxHeap().max_dist() == float("inf")

    def test_max_dist_tracks_farthest(self):
        h = MaxHeap([(1.0, 1)])
        assert h.max_dist() == 1.0
        h.push(9.0, 9)
        assert h.max_dist() == 9.0
        h.pop()
        assert h.max_dist() == 1.0

    def test_sorted_items(self):
        h = MaxHeap([(2.0, 2), (1.0, 1), (3.0, 3)])
        assert h.sorted_items() == [(1.0, 1), (2.0, 2), (3.0, 3)]


class TestKnnBuffer:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            KnnBuffer(0)

    def test_tau_is_inf_until_full(self):
        buf = KnnBuffer(3)
        buf.offer(1.0, 1)
        buf.offer(2.0, 2)
        assert buf.tau == float("inf")
        buf.offer(3.0, 3)
        assert buf.tau == 3.0

    def test_offer_evicts_farthest(self):
        buf = KnnBuffer(2)
        buf.offer(5.0, 5)
        buf.offer(3.0, 3)
        assert buf.offer(1.0, 1)  # evicts 5
        d, i = buf.result()
        assert list(i) == [1, 3]

    def test_offer_rejects_too_far(self):
        buf = KnnBuffer(2)
        buf.offer(1.0, 1)
        buf.offer(2.0, 2)
        assert not buf.offer(9.0, 9)

    def test_offer_many_matches_sequential_offers(self):
        rng = np.random.default_rng(0)
        d = rng.random(100)
        ids = np.arange(100)
        a = KnnBuffer(7)
        a.offer_many(d, ids)
        b = KnnBuffer(7)
        for dd, ii in zip(d, ids):
            b.offer(float(dd), int(ii))
        assert np.allclose(a.result()[0], b.result()[0])
        assert np.array_equal(a.result()[1], b.result()[1])

    def test_result_sorted_closest_first(self):
        buf = KnnBuffer(3)
        for d, i in [(3.0, 3), (1.0, 1), (2.0, 2)]:
            buf.offer(d, i)
        d, i = buf.result()
        assert list(d) == [1.0, 2.0, 3.0]
        assert list(i) == [1, 2, 3]

    def test_empty_result(self):
        d, i = KnnBuffer(3).result()
        assert len(d) == 0 and len(i) == 0


class TestMergeKnn:
    def test_merge_two_disjoint(self):
        a = (np.array([1.0, 3.0]), np.array([10, 30]))
        b = (np.array([2.0, 4.0]), np.array([20, 40]))
        d, i = merge_knn([a, b], 3)
        assert list(i) == [10, 20, 30]

    def test_duplicates_collapse_to_best_distance(self):
        a = (np.array([5.0]), np.array([7]))
        b = (np.array([1.0]), np.array([7]))
        d, i = merge_knn([a, b], 2)
        assert list(i) == [7]
        assert list(d) == [1.0]

    def test_ties_broken_by_id(self):
        a = (np.array([1.0]), np.array([9]))
        b = (np.array([1.0]), np.array([2]))
        d, i = merge_knn([a, b], 2)
        assert list(i) == [2, 9]

    def test_empty_inputs(self):
        d, i = merge_knn([], 3)
        assert len(d) == 0
        d, i = merge_knn([(np.array([]), np.array([]))], 3)
        assert len(d) == 0

    def test_merge_is_associative_on_random_data(self):
        rng = np.random.default_rng(3)
        parts = [
            (rng.random(5), rng.integers(0, 50, 5).astype(np.int64)) for _ in range(4)
        ]
        k = 6
        all_at_once = merge_knn(parts, k)
        pairwise = merge_knn([merge_knn(parts[:2], k), merge_knn(parts[2:], k)], k)
        assert np.array_equal(all_at_once[1], pairwise[1])
        assert np.allclose(all_at_once[0], pairwise[0])
