"""Unit tests for the KD-tree baseline (serial + distributed + router)."""

import numpy as np
import pytest

from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.kdtree import KDPartitionRouter, KDTree, distributed_build_kd
from repro.simmpi import Comm, Simulation


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(2)
    X = rng.normal(0, 5, size=(500, 10)).astype(np.float32)
    Q = (X[:20] + rng.normal(0, 0.5, (20, 10))).astype(np.float32)
    gt_d, gt_i = brute_force_knn(X, Q, 6)
    return X, Q, gt_d, gt_i


class TestSerialKD:
    def test_exact_matches_brute_force(self, data):
        X, Q, gt_d, gt_i = data
        tree = KDTree(X, leaf_size=16)
        for qi in range(len(Q)):
            d, ids = tree.knn_search(Q[qi], 6)
            assert np.array_equal(ids, gt_i[qi])

    def test_leaves_partition(self, data):
        X, *_ = data
        tree = KDTree(X, leaf_size=16)
        allids = np.sort(np.concatenate(tree.leaves()))
        assert np.array_equal(allids, np.arange(len(X)))

    def test_rejects_non_coordinate_metric(self, data):
        X, *_ = data
        with pytest.raises(ValueError, match="KD-tree"):
            KDTree(X, metric="l1")
        with pytest.raises(ValueError, match="KD-tree"):
            KDTree(X, metric="cosine")

    def test_duplicate_coordinates_terminate(self):
        X = np.ones((64, 4), dtype=np.float32)
        tree = KDTree(X, leaf_size=4)
        _, ids = tree.knn_search(np.ones(4, dtype=np.float32), 3)
        assert len(ids) == 3

    def test_pruning_in_low_dim(self):
        """In 3 dimensions the KD-tree prunes most of the dataset per query."""
        rng = np.random.default_rng(3)
        X = rng.normal(size=(2000, 3)).astype(np.float32)
        tree = KDTree(X, leaf_size=16)
        before = tree.n_dist_evals
        for q in X[:20]:
            tree.knn_search(q, 5)
        per_query = (tree.n_dist_evals - before) / 20
        assert per_query < 0.25 * len(X)

    def test_pruning_collapses_in_high_dim(self):
        """In 128 dimensions the same tree scans most of the data — the
        failure mode motivating the paper (§II on PANDA)."""
        X = sift_like(2000, seed=5)
        tree = KDTree(X, leaf_size=16)
        before = tree.n_dist_evals
        Q = sample_queries(X, 20, noise_scale=0.05, seed=6)
        for q in Q:
            tree.knn_search(q, 5)
        per_query = (tree.n_dist_evals - before) / 20
        assert per_query > 0.5 * len(X)


class TestDistributedKD:
    def test_partition_and_routing(self, data):
        X, Q, gt_d, gt_i = data
        P = 4
        chunks = np.array_split(np.arange(len(X)), P)
        sim = Simulation()
        holder = {}

        def program(ctx):
            comm = holder["comm"]
            r = comm.rank(ctx)
            return (yield from distributed_build_kd(ctx, comm, X[chunks[r]], chunks[r]))

        pids = [sim.add_proc(program, name=f"r{i}") for i in range(P)]
        holder["comm"] = Comm(sim, pids)
        out = sim.run()
        results = [out.results[p] for p in pids]

        sizes = [len(r.ids) for r in results]
        assert sum(sizes) == len(X) and max(sizes) - min(sizes) <= 1
        allids = np.sort(np.concatenate([r.ids for r in results]))
        assert np.array_equal(allids, np.arange(len(X)))

        # half-space containment invariant
        for res in results:
            for axis, threshold, went_left in res.path:
                vals = res.points[:, axis]
                if went_left:
                    assert (vals <= threshold + 1e-5).all()
                else:
                    assert (vals > threshold - 1e-5).all()

        router = KDPartitionRouter.from_paths([r.path for r in results])
        id2part = {int(i): r for r in range(P) for i in results[r].ids}
        for qi in range(len(Q)):
            parts = set(router.route_exact(Q[qi], float(gt_d[qi][-1]) * (1 + 1e-6)))
            need = {id2part[int(i)] for i in gt_i[qi]}
            assert need <= parts


class TestKDRouter:
    def test_route_nearest_is_containing_cell(self, data):
        X, Q, *_ = data
        tree = KDTree(X, leaf_size=64)
        router = KDPartitionRouter.from_kdtree(tree)
        leaves = tree.leaves()
        for qi in range(5):
            p = router.route_nearest(Q[qi])
            assert 0 <= p < len(leaves)

    def test_exact_route_superset_of_nearest(self, data):
        X, Q, *_ = data
        tree = KDTree(X, leaf_size=64)
        router = KDPartitionRouter.from_kdtree(tree)
        for qi in range(5):
            nearest = router.route_nearest(Q[qi])
            assert nearest in router.route_exact(Q[qi], 1.0)

    def test_negative_tau_rejected(self, data):
        X, Q, *_ = data
        router = KDPartitionRouter.from_kdtree(KDTree(X, leaf_size=64))
        with pytest.raises(ValueError):
            router.route_exact(Q[0], -0.5)
