#!/usr/bin/env python
"""Fault injection demo: crash a rank mid-batch and keep answering queries.

Runs the same batch search three times on a simulated 4-node cluster:

1. fault-free, as the golden reference;
2. with node 1 crashing mid-run and replication r=2 — the fault-tolerant
   master times the lost tasks out and fails them over to the surviving
   replica, so every query still gets its *full* answer (bit-identical to
   the golden run);
3. the same crash with r=1 (no replicas) — the affected tasks are
   abandoned after bounded retries and the batch completes with flagged
   partial results instead of hanging.

Exits non-zero if any of those guarantees is violated, so it doubles as a
smoke test (``make faults-demo``).

Run:  python examples/faults_demo.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


import numpy as np

from repro import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import availability_stats, degraded_recall, recall_at_k
from repro.faults import FaultSpec, RankCrash
from repro.hnsw import HnswParams


def build_and_query(X, Q, replication, fault_spec=None):
    config = SystemConfig(
        n_cores=4,
        cores_per_node=1,  # one core per node so workgroups span nodes
        k=10,
        hnsw=HnswParams(M=8, ef_construction=60),
        n_probe=2,
        replication_factor=replication,
        one_sided=False,  # the fault-tolerant master needs two-sided results
        fault_spec=fault_spec,
        seed=0,
    )
    ann = DistributedANN(config)
    ann.fit(X)
    return ann.query(Q)


def main() -> int:
    print("generating 3000 SIFT-like vectors + 50 held-out queries ...")
    X = sift_like(3000, seed=0)
    Q = sample_queries(X, 50, noise_scale=0.05, seed=1)
    gt_dists, gt_ids = brute_force_knn(X, Q, k=10)

    # 1. golden fault-free run (r=2, plain dispatch)
    D0, I0, rep0 = build_and_query(X, Q, replication=2)
    recall0 = recall_at_k(I0, gt_ids, gt_dists, D0)
    print(
        f"golden run: {rep0.total_seconds*1e3:.3f} ms virtual, recall@10 = {recall0:.3f}"
    )

    # 2. crash node 1 about a third of the way through the batch, r=2
    spec = FaultSpec(crashes=(RankCrash(node=1, at=rep0.total_seconds * 0.3),))
    D2, I2, rep2 = build_and_query(X, Q, replication=2, fault_spec=spec)
    stats2 = availability_stats(rep2.completeness, rep2.n_queries)
    print(
        f"crash with r=2: {stats2}\n"
        f"  {rep2.failovers} failovers, {rep2.retries} retries, "
        f"{rep2.failed_tasks} abandoned tasks, "
        f"suspected dead cores {rep2.suspected_dead_cores}, "
        f"crashed pids {list(rep2.crashed_pids)}"
    )
    ok = True
    if not np.array_equal(I0, I2):
        print("FAIL: replicated run under a crash must match the golden results")
        ok = False
    if stats2.availability != 1.0:
        print("FAIL: replicated run under a crash must answer every query fully")
        ok = False
    if rep2.failovers == 0:
        print("FAIL: expected at least one failover to the surviving replica")
        ok = False

    # 3. the same crash without replication: degraded but bounded
    D1, I1, rep1 = build_and_query(X, Q, replication=1, fault_spec=spec)
    stats1 = availability_stats(rep1.completeness, rep1.n_queries)
    split = degraded_recall(I1, gt_ids, rep1.completeness, gt_dists, D1)
    print(
        f"crash with r=1: {stats1}\n"
        f"  recall overall {split['overall']:.3f}, "
        f"complete-only {split['complete']:.3f}, degraded-only {split['degraded']:.3f}"
    )
    if stats1.n_degraded == 0:
        print("FAIL: unreplicated run under a crash should flag degraded queries")
        ok = False
    if rep1.failed_tasks == 0:
        print("FAIL: unreplicated run under a crash should abandon the lost tasks")
        ok = False

    print("OK: crash tolerated, degradation flagged" if ok else "demo FAILED")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
