#!/usr/bin/env python
"""Quickstart: build a distributed ANN index and run a batch of queries.

Builds the paper's system — distributed VP-tree partitioning + one HNSW
index per partition — on a simulated 8-core / 2-node cluster, runs a
k-NN batch, and prints results, recall against exact ground truth, and the
simulated cluster's timing report.

Run:  python examples/quickstart.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


from repro import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, sample_queries, sift_like
from repro.eval import recall_at_k
from repro.hnsw import HnswParams


def main() -> None:
    # 1. data: a SIFT-descriptor-like corpus (128-d, clustered, quantized)
    print("generating 4000 SIFT-like vectors + 100 held-out queries ...")
    X = sift_like(4000, seed=0)
    Q = sample_queries(X, 100, noise_scale=0.05, seed=1)
    gt_dists, gt_ids = brute_force_knn(X, Q, k=10)

    # 2. configure the distributed system: 8 cores on 2 nodes, one data
    #    partition per core, 3 partitions probed per query
    config = SystemConfig(
        n_cores=8,
        cores_per_node=4,
        k=10,
        hnsw=HnswParams(M=8, ef_construction=60),
        n_probe=3,
        one_sided=True,  # workers push results into the master's RMA window
        seed=0,
    )
    ann = DistributedANN(config)

    # 3. fit: simulates Algorithms 1-2 (distributed VP build) and the
    #    per-partition HNSW constructions
    build = ann.fit(X)
    print(
        f"built {config.n_cores} partitions of sizes {build.partition_sizes}\n"
        f"  virtual construction time: {build.total_seconds:.3f}s "
        f"(VP partitioning {build.vptree_seconds:.3f}s, "
        f"HNSW {build.hnsw_seconds:.3f}s)"
    )

    # 4. query: simulates the master-worker batch search (Algorithms 3-4)
    D, I, report = ann.query(Q)
    print(
        f"answered {report.n_queries} queries "
        f"({report.tasks} (query, partition) tasks, "
        f"mean fan-out {report.mean_fanout:.1f})\n"
        f"  virtual batch time: {report.total_seconds * 1e3:.2f} ms "
        f"({report.throughput:,.0f} queries/s on the simulated cluster)\n"
        f"  communication share of busy time: {report.comm_fraction:.1%}"
    )

    # 5. accuracy against exact brute-force ground truth
    recall = recall_at_k(I, gt_ids, gt_dists, D)
    print(f"recall@10 = {recall:.3f}")

    print("\nfirst query's neighbors (id: distance):")
    for j in range(10):
        print(f"  {I[0, j]:5d}: {D[0, j]:.2f}")


if __name__ == "__main__":
    main()
