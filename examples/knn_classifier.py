#!/usr/bin/env python
"""Distributed k-NN classification (the paper's other motivating use).

The paper's intro: k-NN "finds extensive applications in machine learning
and data mining as a classification and regression method", and batched
throughput search is exactly what an offline classifier needs.  Here an
MDCGen-style labeled dataset (the paper's SYN generator, which returns
cluster labels) is split into train/test, the training vectors go into the
distributed index, and test points are classified by majority vote over
their k approximate neighbors — including measuring how the routing
fan-out knob trades accuracy for throughput.

Run:  python examples/knn_classifier.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import DistributedANN, SystemConfig
from repro.datasets import MDCGenConfig, mdcgen
from repro.hnsw import HnswParams


def majority_vote(neighbor_labels: np.ndarray) -> int:
    vals, counts = np.unique(neighbor_labels[neighbor_labels >= 0], return_counts=True)
    if len(vals) == 0:
        return -1
    return int(vals[np.argmax(counts)])


def main() -> None:
    print("generating a labeled 10-cluster MDCGen dataset (paper's SYN setup) ...")
    X, labels, _ = mdcgen(
        MDCGenConfig(
            n_points=6000,
            dim=64,
            n_clusters=10,
            outlier_fraction=0.005,
            compactness=0.04,
            seed=8,
        )
    )
    rng = np.random.default_rng(9)
    test_idx = rng.choice(len(X), size=500, replace=False)
    train_mask = np.ones(len(X), dtype=bool)
    train_mask[test_idx] = False
    X_train, y_train = X[train_mask], labels[train_mask]
    X_test, y_test = X[test_idx], labels[test_idx]
    # only score points with a real class (outliers have label -1)
    scored = y_test >= 0
    print(f"  train={len(X_train)}, test={len(X_test)} ({scored.sum()} non-outlier)")

    for n_probe in (1, 3):
        ann = DistributedANN(
            SystemConfig(
                n_cores=8,
                cores_per_node=4,
                k=10,
                hnsw=HnswParams(M=8, ef_construction=60, seed=8),
                n_probe=n_probe,
                seed=8,
            )
        )
        ann.fit(X_train)
        D, I, rep = ann.query(X_test, k=10)

        pred = np.array(
            [majority_vote(y_train[I[i][I[i] >= 0]]) for i in range(len(X_test))]
        )
        acc = float((pred[scored] == y_test[scored]).mean())
        print(
            f"n_probe={n_probe}: accuracy={acc:.3f} on non-outlier test points, "
            f"virtual batch time {rep.total_seconds*1e3:.2f} ms "
            f"({rep.throughput:,.0f} queries/s)"
        )

    print(
        "\neven a single-probe route classifies accurately here: cluster-pure "
        "neighborhoods tolerate approximate neighbor sets — the reason the "
        "paper's approximate search is a drop-in for k-NN classification."
    )


if __name__ == "__main__":
    main()
