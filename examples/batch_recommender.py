#!/usr/bin/env python
"""Batched recommender-style retrieval (the paper's motivating workload).

The paper targets throughput on batched queries "like in recommender
systems": item embeddings live in a distributed index, and a nightly job
retrieves the top-k similar items for every user's recent interactions.

This example builds a DEEP-like embedding corpus (unit-norm CNN-style
vectors), then compares two operating points of the same index:

- a *throughput* configuration (n_probe=2, modest ef) for the bulk batch,
- a *quality* configuration (adaptive routing) for a small head of
  high-value users,

and shows the recall/throughput trade-off between them.

Run:  python examples/batch_recommender.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


from repro import DistributedANN, SystemConfig
from repro.datasets import brute_force_knn, deep_like, sample_queries
from repro.eval import recall_at_k
from repro.hnsw import HnswParams


def main() -> None:
    print("generating 6000 DEEP-like item embeddings (96-d, unit norm) ...")
    items = deep_like(6000, seed=10)
    # user interest vectors: noisy versions of items they interacted with
    bulk_users = sample_queries(items, 400, noise_scale=0.08, seed=11)
    vip_users = sample_queries(items, 40, noise_scale=0.08, seed=12)
    gt_bulk = brute_force_knn(items, bulk_users, 10)
    gt_vip = brute_force_knn(items, vip_users, 10)

    base = dict(
        n_cores=16,
        cores_per_node=8,
        k=10,
        hnsw=HnswParams(M=12, ef_construction=80),
        seed=10,
    )

    print("\n[throughput tier] n_probe=2, one-sided results")
    fast = DistributedANN(SystemConfig(**base, n_probe=2))
    fast.fit(items)
    D, I, rep = fast.query(bulk_users)
    rec = recall_at_k(I, gt_bulk[1], gt_bulk[0], D)
    print(
        f"  {rep.n_queries} users -> {rep.throughput:,.0f} queries/s "
        f"(virtual), recall@10 = {rec:.3f}"
    )

    print("[quality tier]    adaptive exact-ball routing")
    precise = DistributedANN(
        SystemConfig(**base, routing="adaptive", one_sided=False)
    )
    precise.fit(items)
    Dv, Iv, repv = precise.query(vip_users)
    recv = recall_at_k(Iv, gt_vip[1], gt_vip[0], Dv)
    print(
        f"  {repv.n_queries} users -> {repv.throughput:,.0f} queries/s "
        f"(virtual), recall@10 = {recv:.3f}, "
        f"mean partitions/query = {repv.mean_fanout:.1f}"
    )

    print("\nsample recommendations for user 0 (item id: similarity distance):")
    for j in range(5):
        print(f"  item {I[0, j]:5d}  d={D[0, j]:.4f}")

    speed_ratio = repv.total_seconds / rep.total_seconds * len(bulk_users) / len(vip_users)
    print(
        f"\nper-query cost of the quality tier is ~{speed_ratio:.1f}x the "
        "throughput tier — route VIP traffic there, bulk traffic to the fast tier."
    )


if __name__ == "__main__":
    main()
