#!/usr/bin/env python
"""Capacity planning: sweep cluster sizes before buying the cluster.

The simulated MPI runtime makes "what if we ran this on N cores?" a
function call.  This study sizes a deployment for a billion-point
SIFT-like corpus: it sweeps core counts, reports virtual batch latency,
throughput, parallel efficiency, and per-node memory, and flags the
knee of the curve — all from a laptop.

It also demonstrates using :mod:`repro.simmpi` directly (the runtime is a
general simulated-MPI substrate, not just the ANN system's plumbing).

Run:  python examples/cluster_scaling_study.py
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))


from repro import DistributedANN, SystemConfig
from repro.datasets import load_dataset, sample_queries
from repro.eval import speedup_table
from repro.hnsw import HnswParams
from repro.simmpi import Comm, Simulation


def size_the_cluster() -> None:
    print("=== sizing a deployment for a 1B-point corpus ===")
    ds = load_dataset("ANN_SIFT1B", n_points=4096, n_queries=10, k=10, seed=33)
    Q = sample_queries(ds.X, 500, noise_scale=0.05, seed=34)

    measurements = []
    mem = {}
    for P in (64, 128, 256, 512, 1024):
        cfg = SystemConfig(
            n_cores=P,
            cores_per_node=24,
            k=10,
            hnsw=HnswParams(M=16, ef_construction=100),
            searcher="modeled",
            modeled_partition_points=10**9 // P,
            modeled_sample_points=16,
            modeled_search_seconds=5e-3,  # measured per-task cost on one core
            n_probe=3,
            seed=33,
        )
        ann = DistributedANN(cfg)
        ann.fit(ds.X)
        _, _, rep = ann.query(Q)
        measurements.append((P, rep.total_seconds))
        # paper-scale partition bytes: points/partition x dim x 4B x replicas
        mem[P] = (10**9 // P) * 128 * 4 * cfg.threads_per_node / 2**30

    rows = speedup_table(measurements)
    print(f"{'cores':>6} {'batch s':>9} {'speedup':>8} {'eff':>5} {'GB/node':>8}")
    knee = None
    for r in rows:
        print(
            f"{r.cores:>6} {r.seconds:>9.3f} {r.speedup:>8.2f} "
            f"{r.efficiency:>5.2f} {mem[r.cores]:>8.1f}"
        )
        if knee is None and r.efficiency < 0.6:
            knee = r.cores
    print(
        f"\nefficiency drops below 60% at ~{knee or '>1024'} cores — "
        "beyond that you are buying cores to idle."
    )


def simmpi_demo() -> None:
    """A 64-rank allreduce ring written directly against the runtime."""
    print("\n=== raw simmpi: 64-rank stencil-style halo exchange ===")
    sim = Simulation()
    holder = {}

    def rank_program(ctx):
        comm = holder["world"]
        r = comm.rank(ctx)
        value = float(r)
        for _ in range(4):  # four halo rounds
            yield from comm.send(ctx, (r + 1) % comm.size, value, tag=1)
            left, _, _ = yield from comm.recv(ctx, source=(r - 1) % comm.size, tag=1)
            value = 0.5 * (value + left)
            yield from ctx.compute(1e-6, kind="stencil")
        total = yield from comm.allreduce(ctx, value, op=sum)
        return total

    pids = [sim.add_proc(rank_program, node=r // 24, name=f"r{r}") for r in range(64)]
    holder["world"] = Comm(sim, pids)
    out = sim.run()
    print(
        f"64 ranks, makespan {out.makespan*1e6:.1f} virtual µs, "
        f"{out.n_events} engine events, "
        f"conserved sum = {out.results[0]:.1f} (expected {sum(range(64))})"
    )


if __name__ == "__main__":
    size_the_cluster()
    simmpi_demo()
