#!/usr/bin/env python
"""Image-descriptor similarity search with TEXMEX-format files.

Mirrors the paper's headline scenario: a corpus of SIFT image descriptors,
indexed once, queried in batches — plus the file plumbing a user of the
real ANN_SIFT1B corpus needs.  The example:

1. writes a SIFT-like corpus + query set to ``.fvecs`` files and exact
   ground truth to ``.ivecs`` (the formats the real corpora ship in),
2. reads them back (swap in real TEXMEX files here to index real data),
3. builds the distributed index and sweeps the HNSW quality knob M,
   reproducing the Fig. 6 trade-off on your machine,
4. saves and reloads a partition's HNSW index to show persistence.

Run:  python examples/image_descriptor_search.py
"""

import os
import sys
import tempfile

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import numpy as np

from repro import DistributedANN, SystemConfig
from repro.datasets import (
    brute_force_knn,
    read_fvecs,
    read_ivecs,
    sample_queries,
    sift_like,
    write_fvecs,
    write_ivecs,
)
from repro.eval import recall_at_k
from repro.hnsw import HnswIndex, HnswParams


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="repro_sift_")
    base_path = os.path.join(workdir, "base.fvecs")
    query_path = os.path.join(workdir, "query.fvecs")
    gt_path = os.path.join(workdir, "groundtruth.ivecs")

    # --- 1. produce a corpus in the real datasets' file formats ---------
    print("writing SIFT-like corpus in TEXMEX formats ...")
    X = sift_like(5000, seed=3)
    Q = sample_queries(X, 100, noise_scale=0.05, seed=4)
    gt_d, gt_i = brute_force_knn(X, Q, 10)
    write_fvecs(base_path, X)
    write_fvecs(query_path, Q)
    write_ivecs(gt_path, gt_i.astype(np.int32))
    print(f"  {base_path} ({os.path.getsize(base_path)/1e6:.1f} MB)")

    # --- 2. load them back (this is where real ANN_SIFT1B files plug in) --
    X = read_fvecs(base_path)
    Q = read_fvecs(query_path)
    gt_i = read_ivecs(gt_path).astype(np.int64)
    print(f"loaded {len(X)} base vectors, {len(Q)} queries, dim={X.shape[1]}")

    # --- 3. the Fig. 6 sweep: M controls the recall/time trade-off -------
    print("\nM sweep (Fig. 6's trade-off):")
    print(f"{'M':>4} {'virtual ms':>12} {'recall@10':>10}")
    for m in (8, 16, 32):
        ann = DistributedANN(
            SystemConfig(
                n_cores=8,
                cores_per_node=4,
                k=10,
                hnsw=HnswParams(M=m, ef_construction=80, seed=5),
                ef_search=40,
                n_probe=3,
                seed=5,
            )
        )
        ann.fit(X)
        D, I, rep = ann.query(Q)
        rec = recall_at_k(I, gt_i, gt_d, D)
        print(f"{m:>4} {rep.total_seconds*1e3:>12.2f} {rec:>10.3f}")

    # --- 4. persist one partition's local index -------------------------
    part = ann.partitions[0]
    index_path = os.path.join(workdir, "partition0.npz")
    part.index.save(index_path)
    reloaded = HnswIndex.load(index_path)
    q0 = Q[0]
    d1, i1 = part.index.knn_search(q0, 5)
    d2, i2 = reloaded.knn_search(q0, 5)
    assert np.array_equal(i1, i2)
    print(
        f"\npartition 0's HNSW saved to {index_path} "
        f"({os.path.getsize(index_path)/1e3:.0f} kB) and reloaded: "
        "identical search results"
    )


if __name__ == "__main__":
    main()
